#include <numeric>
#include <vector>

#include "graph/types.hpp"
#include "seq/seq_msf.hpp"

namespace smp::seq {

using graph::EdgeId;
using graph::EdgeList;
using graph::kInvalidEdge;
using graph::MsfResult;
using graph::VertexId;
using graph::WeightOrder;

namespace {

/// Working edge carrying the original id through contractions.
struct CEdge {
  VertexId u, v;
  graph::Weight w;
  EdgeId orig;
};

}  // namespace

MsfResult boruvka_compact_msf(const EdgeList& g) {
  MsfResult res;
  VertexId n = g.num_vertices;
  if (n == 0) return res;

  std::vector<CEdge> edges;
  edges.reserve(g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    edges.push_back({e.u, e.v, e.w, i});
  }

  std::vector<EdgeId> best(n);
  std::vector<VertexId> label(n);
  while (!edges.empty()) {
    // find-min per (super)vertex.
    best.assign(n, kInvalidEdge);
    for (EdgeId i = 0; i < edges.size(); ++i) {
      const CEdge& e = edges[i];
      const WeightOrder key{e.w, e.orig};
      for (const VertexId x : {e.u, e.v}) {
        if (best[x] == kInvalidEdge ||
            key < WeightOrder{edges[best[x]].w, edges[best[x]].orig}) {
          best[x] = i;
        }
      }
    }

    // connect-components over the chosen pseudo-forest (sequential pointer
    // chasing; mutual-minimum pairs are the only cycles).
    std::vector<VertexId> parent(n);
    for (VertexId v = 0; v < n; ++v) {
      if (best[v] == kInvalidEdge) {
        parent[v] = v;
        continue;
      }
      const CEdge& e = edges[best[v]];
      parent[v] = e.u == v ? e.v : e.u;
    }
    for (VertexId v = 0; v < n; ++v) {
      if (parent[parent[v]] == v && v < parent[v]) parent[v] = v;
    }
    for (VertexId v = 0; v < n; ++v) {
      VertexId r = v;
      while (parent[r] != r) r = parent[r];
      // Path-compress for the relabel scan below.
      VertexId x = v;
      while (parent[x] != r) {
        const VertexId nx = parent[x];
        parent[x] = r;
        x = nx;
      }
    }

    // Record chosen edges once (smaller endpoint of a mutual pair wins).
    for (VertexId v = 0; v < n; ++v) {
      const EdgeId b = best[v];
      if (b == kInvalidEdge) continue;
      const CEdge& e = edges[b];
      const VertexId other = e.u == v ? e.v : e.u;
      if (best[other] != kInvalidEdge && edges[best[other]].orig == e.orig &&
          other < v) {
        continue;
      }
      res.edges.push_back({e.u, e.v, e.w});
      res.edge_ids.push_back(e.orig);
      res.total_weight += e.w;
    }

    // compact-graph: dense relabel + full edge-list rebuild (the costly
    // materialization this baseline exists to exhibit).
    label.assign(n, 0);
    VertexId next_n = 0;
    for (VertexId v = 0; v < n; ++v) {
      if (parent[v] == v) label[v] = next_n++;
    }
    std::vector<CEdge> next;
    next.reserve(edges.size());
    for (const CEdge& e : edges) {
      const VertexId su = label[parent[e.u]];
      const VertexId sv = label[parent[e.v]];
      if (su != sv) next.push_back({su, sv, e.w, e.orig});
    }
    edges.swap(next);
    n = next_n;
  }

  res.num_trees = g.num_vertices - res.edges.size();
  return res;
}

}  // namespace smp::seq
