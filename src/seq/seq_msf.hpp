#pragma once

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"

namespace smp::seq {

/// The three sequential baselines of §5.2.  The *best* of these per input
/// class is what the paper (and our benchmarks) measure parallel speedup
/// against.  All use WeightOrder, so all return the identical forest.

/// Prim's algorithm with an indexed binary heap, restarted per component;
/// O(m log n).  Often the fastest baseline on random sparse graphs.
graph::MsfResult prim_msf(const graph::CsrGraph& g);
graph::MsfResult prim_msf(const graph::EdgeList& g);

/// Kruskal's algorithm: non-recursive bottom-up merge sort of the edges (the
/// paper found it superior to qsort/GNU quicksort/recursive merge sort for
/// large inputs) followed by a union-find scan; O(m log m).
graph::MsfResult kruskal_msf(const graph::EdgeList& g);

/// Sequential Borůvka, O(m log n): repeated find-min over the live edge list
/// with union-find component tracking and edge-list filtering.
graph::MsfResult boruvka_msf(const graph::EdgeList& g);

/// Sequential Borůvka in the literal "m log m" style of 2003-era codes (the
/// baseline the paper and Chung & Condon measured against): every iteration
/// materializes the contracted graph — relabels endpoints and rebuilds the
/// edge list — instead of tracking components in a union-find.  Kept as a
/// faithful historical baseline; boruvka_msf above is the modern variant.
graph::MsfResult boruvka_compact_msf(const graph::EdgeList& g);

}  // namespace smp::seq
