#include "graph/types.hpp"
#include "seq/indexed_heap.hpp"
#include "seq/seq_msf.hpp"

namespace smp::seq {

using graph::CsrGraph;
using graph::EdgeId;
using graph::EdgeList;
using graph::MsfResult;
using graph::VertexId;
using graph::Weight;
using graph::WeightOrder;

namespace {

/// Heap key for a fringe vertex: the best edge connecting it to the tree.
struct FringeKey {
  WeightOrder order;
  VertexId parent;

  friend bool operator<(const FringeKey& a, const FringeKey& b) {
    return a.order < b.order;
  }
};

}  // namespace

MsfResult prim_msf(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  MsfResult res;
  if (n == 0) return res;
  res.edges.reserve(n);
  res.edge_ids.reserve(n);

  std::vector<char> in_tree(n, 0);
  IndexedHeap<FringeKey> heap(n);

  for (VertexId start = 0; start < n; ++start) {
    if (in_tree[start]) continue;
    // Grow this component's tree from `start`.
    in_tree[start] = 1;
    heap.clear();
    VertexId current = start;
    for (;;) {
      const auto nbrs = g.neighbors(current);
      const auto ws = g.weights(current);
      const auto os = g.origs(current);
      for (std::size_t a = 0; a < nbrs.size(); ++a) {
        const VertexId t = nbrs[a];
        if (in_tree[t]) continue;
        heap.push_or_decrease(t, FringeKey{{ws[a], os[a]}, current});
      }
      if (heap.empty()) break;
      const auto top = heap.pop();
      in_tree[top.id] = 1;
      res.edges.push_back({top.key.parent, top.id, top.key.order.w});
      res.edge_ids.push_back(top.key.order.orig);
      res.total_weight += top.key.order.w;
      current = top.id;
    }
  }
  res.num_trees = n - res.edges.size();
  return res;
}

MsfResult prim_msf(const EdgeList& g) { return prim_msf(CsrGraph(g)); }

}  // namespace smp::seq
