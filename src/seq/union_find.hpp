#pragma once

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

namespace smp::seq {

/// Disjoint-set forest with union by rank and path halving.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0), num_sets_(n) {
    std::iota(parent_.begin(), parent_.end(), std::uint32_t{0});
  }

  [[nodiscard]] std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merge the sets of a and b; returns false if already joined.
  bool unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
    --num_sets_;
    return true;
  }

  [[nodiscard]] bool connected(std::uint32_t a, std::uint32_t b) {
    return find(a) == find(b);
  }

  /// Raw parent pointer — lets concurrent readers walk to a root without the
  /// path-halving writes of find() (used by Filter-Kruskal's parallel filter).
  [[nodiscard]] std::uint32_t parent_of(std::uint32_t x) const { return parent_[x]; }

  [[nodiscard]] std::size_t num_sets() const { return num_sets_; }
  [[nodiscard]] std::size_t size() const { return parent_.size(); }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint8_t> rank_;
  std::size_t num_sets_;
};

}  // namespace smp::seq
