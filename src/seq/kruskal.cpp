#include <vector>

#include "graph/types.hpp"
#include "pprim/seq_sort.hpp"
#include "seq/seq_msf.hpp"
#include "seq/union_find.hpp"

namespace smp::seq {

using graph::EdgeId;
using graph::EdgeList;
using graph::MsfResult;
using graph::Weight;
using graph::WeightOrder;

namespace {

/// Compact sort record: weight + edge index.  Sorting these directly (rather
/// than indices with indirect weight lookups) keeps the merge passes
/// sequential in memory — the kind of cache consideration the paper's
/// algorithm engineering is about.
struct SortRec {
  Weight w;
  EdgeId id;
};

}  // namespace

MsfResult kruskal_msf(const EdgeList& g) {
  MsfResult res;
  const std::size_t m = g.edges.size();

  // Non-recursive bottom-up merge sort — the paper found it superior to
  // qsort, GNU quicksort and recursive merge sort for large inputs (§5.2).
  std::vector<SortRec> order(m);
  for (EdgeId i = 0; i < m; ++i) order[i] = {g.edges[i].w, i};
  std::vector<SortRec> scratch(m);
  merge_sort_bottomup(std::span<SortRec>(order), std::span<SortRec>(scratch),
                      [](const SortRec& a, const SortRec& b) {
                        return WeightOrder{a.w, a.id} < WeightOrder{b.w, b.id};
                      });

  UnionFind uf(g.num_vertices);
  for (const SortRec& r : order) {
    const auto& e = g.edges[r.id];
    if (uf.unite(e.u, e.v)) {
      res.edges.push_back(e);
      res.edge_ids.push_back(r.id);
      res.total_weight += e.w;
      if (uf.num_sets() == 1) break;  // spanning tree complete
    }
  }
  res.num_trees = g.num_vertices - res.edges.size();
  return res;
}

}  // namespace smp::seq
