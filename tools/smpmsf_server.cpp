// smpmsf-server — the MSF serving daemon: a ServiceCore behind one or both
// transports (AF_UNIX line protocol, TCP binary protocol; grammar and frame
// layout in docs/SERVING.md).
//
//   smpmsf-server (--socket PATH | --listen SPEC[,SPEC])
//                 [--threads P] [--dispatchers N] [--shards N]
//                 [--io-threads N] [--queue-cap N] [--default-deadline MS]
//                 [--coalesce-window MS] [--alg A] [--seed S]
//                 [--snapshot-ring N] [--rate-limit-rps R]
//                 [--rate-limit-burst B]
//                 [--data-dir DIR] [--fsync always|interval|none]
//                 [--fsync-interval MS] [--snapshot-every RECORDS]
//                 [--snapshot-retain N] [--crash-at SITE[:SKIP]]
//                 [--preload NAME=PATH]... [--auto-tune]
//
// --preload opens session NAME from PATH before any listener starts (the
// server exits 3 if the open fails), so clients never observe the initial
// solve of a big graph.  A .slab PATH is adopted as the session store's
// mmap base layer (see dynamic/edge_slab.hpp) — the billion-edge path;
// .smpg and DIMACS load like the open verb.  --auto-tune runs the
// machine-calibration pass (pprim/machine.hpp) once at startup and installs
// the measured cutoffs for every solve the server runs.
//
// Each --listen SPEC is `uds:PATH` or `tcp:PORT` (tcp:0 picks an ephemeral
// port, printed on startup); `--socket PATH` is shorthand for
// `--listen uds:PATH`.  Both transports share the one ServiceCore, so a
// session opened over TCP is visible over UDS and vice versa.  --shards
// splits the solver into N independent pools (0 auto-sizes from hardware
// threads); --io-threads sizes the TCP event-loop pool.
//
// With --data-dir every session is durable: acknowledged writes are
// WAL-logged and group-committed under the chosen fsync policy, snapshots
// truncate the log, and startup recovers whatever the directory holds.
// --crash-at arms a process-killing fault at a named persist crash point
// (chaos testing; see tools/chaos_recovery.py).
//
// Runs in the foreground until SIGINT/SIGTERM or a client sends the
// `shutdown` verb on either transport; either way it drains admitted
// requests, disconnects clients, unlinks the socket and exits 0.  Exit
// codes otherwise match the CLI: 2 usage, 3 invalid input.
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "core/msf.hpp"
#include "net/tcp_server.hpp"
#include "persist/wal.hpp"
#include "pprim/fault.hpp"
#include "pprim/machine.hpp"
#include "serve/request.hpp"
#include "serve/service_core.hpp"
#include "serve/uds_server.hpp"

namespace {

using namespace smp;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: smpmsf-server (--socket PATH | --listen SPEC[,SPEC])\n"
               "                     [--threads P] [--dispatchers N]"
               " [--shards N] [--io-threads N]\n"
               "                     [--queue-cap N] [--default-deadline MS]"
               " [--coalesce-window MS]\n"
               "                     [--alg A] [--seed S] [--snapshot-ring N]\n"
               "                     [--rate-limit-rps R]"
               " [--rate-limit-burst B]\n"
               "                     [--data-dir DIR]"
               " [--fsync always|interval|none] [--fsync-interval MS]\n"
               "                     [--snapshot-every RECORDS]"
               " [--snapshot-retain N] [--crash-at SITE[:SKIP]]\n"
               "                     [--preload NAME=PATH]... [--auto-tune]\n"
               "  SPEC: uds:PATH | tcp:PORT (tcp:0 = ephemeral)\n"
               "  PATH: .slab (mmap store base) | .smpg | DIMACS text\n");
  std::exit(2);
}

core::Algorithm parse_algorithm(const std::string& s) {
  // The serving default is the paper's fused variant; anything the CLI
  // accepts works here too (the core reuses the same MsfOptions).
  static constexpr struct {
    const char* name;
    core::Algorithm alg;
  } kTable[] = {
      {"bor-el", core::Algorithm::kBorEL},
      {"bor-al", core::Algorithm::kBorAL},
      {"bor-alm", core::Algorithm::kBorALM},
      {"bor-fal", core::Algorithm::kBorFAL},
      {"mst-bc", core::Algorithm::kMstBC},
      {"bor-uf", core::Algorithm::kBorUF},
      {"par-kruskal", core::Algorithm::kParKruskal},
      {"filter-kruskal", core::Algorithm::kFilterKruskal},
      {"sample-filter", core::Algorithm::kSampleFilter},
      {"prim", core::Algorithm::kSeqPrim},
      {"kruskal", core::Algorithm::kSeqKruskal},
      {"boruvka", core::Algorithm::kSeqBoruvka},
  };
  std::string valid;
  for (const auto& row : kTable) {
    if (s == row.name) return row.alg;
    if (!valid.empty()) valid += ' ';
    valid += row.name;
  }
  throw Error(ErrorCode::kInvalidInput,
              "unknown algorithm '" + s + "' (valid: " + valid + ")");
}

struct Listeners {
  std::string uds_path;        // empty = no UDS listener
  bool tcp = false;
  std::uint16_t tcp_port = 0;  // 0 = ephemeral
};

void parse_listen(const std::string& arg, Listeners& out) {
  std::size_t start = 0;
  while (start <= arg.size()) {
    std::size_t comma = arg.find(',', start);
    if (comma == std::string::npos) comma = arg.size();
    const std::string spec = arg.substr(start, comma - start);
    start = comma + 1;
    if (spec.empty()) continue;
    if (spec.rfind("uds:", 0) == 0) {
      if (!out.uds_path.empty()) usage("duplicate uds: listen spec");
      out.uds_path = spec.substr(4);
      if (out.uds_path.empty()) usage("uds: spec needs a path");
    } else if (spec.rfind("tcp:", 0) == 0) {
      if (out.tcp) usage("duplicate tcp: listen spec");
      const long port = std::strtol(spec.c_str() + 4, nullptr, 10);
      if (spec.size() == 4 || port < 0 || port > 65535) {
        usage(("bad tcp port in '" + spec + "'").c_str());
      }
      out.tcp = true;
      out.tcp_port = static_cast<std::uint16_t>(port);
    } else {
      usage(("bad listen spec '" + spec + "' (want uds:PATH or tcp:PORT)")
                .c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Listeners listen;
  std::string crash_at;
  int io_threads = 2;
  bool auto_tune = false;
  std::vector<std::pair<std::string, std::string>> preloads;
  serve::ServeOptions opts;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(("missing value for " + a).c_str());
        return argv[++i];
      };
      if (a == "--socket") {
        listen.uds_path = value();
      } else if (a == "--listen") {
        parse_listen(value(), listen);
      } else if (a == "--threads") {
        opts.msf.threads = std::atoi(value().c_str());
      } else if (a == "--dispatchers") {
        opts.dispatchers = std::atoi(value().c_str());
      } else if (a == "--shards") {
        opts.shards = std::atoi(value().c_str());
      } else if (a == "--io-threads") {
        io_threads = std::atoi(value().c_str());
      } else if (a == "--queue-cap") {
        opts.queue_capacity =
            static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
      } else if (a == "--default-deadline") {
        opts.default_deadline_s = std::strtod(value().c_str(), nullptr) / 1000.0;
      } else if (a == "--coalesce-window") {
        opts.coalesce_window_s = std::strtod(value().c_str(), nullptr) / 1000.0;
      } else if (a == "--alg") {
        opts.msf.algorithm = parse_algorithm(value());
      } else if (a == "--seed") {
        opts.msf.seed = std::strtoull(value().c_str(), nullptr, 10);
      } else if (a == "--snapshot-ring") {
        opts.snapshot_ring = std::atoi(value().c_str());
      } else if (a == "--rate-limit-rps") {
        opts.rate_limit_rps = std::strtod(value().c_str(), nullptr);
      } else if (a == "--rate-limit-burst") {
        opts.rate_limit_burst = std::strtod(value().c_str(), nullptr);
      } else if (a == "--data-dir") {
        opts.data_dir = value();
      } else if (a == "--fsync") {
        opts.fsync = persist::parse_fsync_policy(value());
      } else if (a == "--fsync-interval") {
        opts.fsync_interval_s = std::strtod(value().c_str(), nullptr) / 1000.0;
      } else if (a == "--snapshot-every") {
        opts.snapshot_every_records =
            std::strtoull(value().c_str(), nullptr, 10);
      } else if (a == "--snapshot-retain") {
        opts.snapshot_retain = std::atoi(value().c_str());
      } else if (a == "--crash-at") {
        crash_at = value();
      } else if (a == "--preload") {
        const std::string spec = value();
        const std::size_t eq = spec.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
          usage(("bad --preload spec '" + spec + "' (want NAME=PATH)").c_str());
        }
        preloads.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      } else if (a == "--auto-tune") {
        auto_tune = true;
      } else {
        usage(("unknown flag " + a).c_str());
      }
    }
    if (listen.uds_path.empty() && !listen.tcp) {
      usage("need --socket PATH or --listen (uds:PATH and/or tcp:PORT)");
    }
    if (!crash_at.empty()) {
      // Chaos harness: kill this process (exit 137, no flush, no
      // destructors) at the (SKIP+1)-th hit of a named persist crash point.
      std::uint64_t skip = 0;
      std::string site = crash_at;
      const auto colon = crash_at.rfind(':');
      if (colon != std::string::npos) {
        site = crash_at.substr(0, colon);
        skip = std::strtoull(crash_at.c_str() + colon + 1, nullptr, 10);
      }
      FaultInjector::arm(site, FaultKind::kCrash, skip);
    }

    // Block the termination signals in every thread, then watch them from a
    // dedicated sigwait thread — the only async-signal-safe way to run the
    // full graceful teardown (drain, join, unlink) on a signal.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
    signal(SIGPIPE, SIG_IGN);

    if (auto_tune) {
      const auto cal = smp::auto_calibrate();
      std::printf("smpmsf-server: auto-tune parallel-for=%zu sample-sort=%zu"
                  " hash-seq=%zu (%.3fs)\n",
                  cal.parallel_for_cutoff, cal.sample_sort_cutoff,
                  cal.compact_hash_seq_cutoff, cal.elapsed_s);
    }

    serve::ServiceCore core(opts);
    for (const std::string& note : core.recovery_notes()) {
      std::printf("smpmsf-server: %s\n", note.c_str());
    }
    // Preloads run before any listener exists: a failed open is a startup
    // error, and clients can never race the initial solve.  A recovered
    // durable session with the same name wins (kAlreadyExists is fine).
    for (const auto& [name, path] : preloads) {
      serve::Request req;
      req.op = serve::Op::kOpen;
      req.session = name;
      req.path = path;
      const serve::Response resp = core.call(std::move(req));
      if (resp.status == serve::Status::kAlreadyExists) {
        std::printf("smpmsf-server: preload '%s': recovered session kept\n",
                    name.c_str());
      } else if (resp.status != serve::Status::kOk) {
        throw Error(ErrorCode::kInvalidInput,
                    "preload '" + name + "' from " + path + ": " + resp.detail);
      } else {
        std::printf("smpmsf-server: preloaded '%s' from %s (%zu forest edges,"
                    " %zu trees)\n",
                    name.c_str(), path.c_str(), resp.forest_edges, resp.trees);
      }
    }
    std::unique_ptr<serve::UdsServer> uds;
    std::unique_ptr<net::TcpServer> tcp;
    if (!listen.uds_path.empty()) {
      uds = std::make_unique<serve::UdsServer>(
          core, serve::UdsServerOptions{.socket_path = listen.uds_path});
      uds->start();
    }
    if (listen.tcp) {
      tcp = std::make_unique<net::TcpServer>(
          core,
          net::TcpServerOptions{.port = listen.tcp_port,
                                .io_threads = io_threads < 1 ? 1 : io_threads});
      tcp->start();
    }

    std::string where;
    if (uds != nullptr) where += "uds:" + listen.uds_path;
    if (tcp != nullptr) {
      if (!where.empty()) where += ",";
      where += "tcp:" + std::to_string(tcp->port());
    }
    std::printf("smpmsf-server: listening on %s (threads=%d shards=%d"
                " dispatchers=%d queue=%zu",
                where.c_str(), core.options().msf.threads, core.shard_count(),
                core.options().dispatchers, core.options().queue_capacity);
    if (tcp != nullptr) std::printf(" io-threads=%d", io_threads);
    if (!opts.data_dir.empty()) {
      std::printf(" data-dir=%s fsync=%s", opts.data_dir.c_str(),
                  std::string(persist::to_string(core.options().fsync)).c_str());
    }
    std::printf(")\n");
    std::fflush(stdout);

    std::atomic<bool> exiting{false};
    const auto stop_all = [&] {
      if (uds != nullptr) uds->stop();
      if (tcp != nullptr) tcp->stop();
    };
    std::thread watcher([&] {
      int sig = 0;
      sigwait(&sigs, &sig);
      if (exiting.load()) return;  // woken by main for a clean wire shutdown
      std::printf("smpmsf-server: caught %s, draining\n", strsignal(sig));
      std::fflush(stdout);
      stop_all();
    });

    // A wire `shutdown` on either transport (or the watcher's stop_all)
    // wakes the matching wait(); stopping both transports then releases the
    // other waiter thread too.
    {
      std::mutex mu;
      std::condition_variable cv;
      bool done = false;
      const auto wake = [&] {
        {
          std::lock_guard<std::mutex> lk(mu);
          done = true;
        }
        cv.notify_all();
      };
      std::vector<std::thread> waiters;
      if (uds != nullptr) {
        waiters.emplace_back([&] {
          uds->wait();
          wake();
        });
      }
      if (tcp != nullptr) {
        waiters.emplace_back([&] {
          tcp->wait();
          wake();
        });
      }
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return done; });
      }
      stop_all();
      for (std::thread& t : waiters) t.join();
    }
    exiting.store(true);
    // Unblock the watcher if the shutdown came over the wire (no-op if it
    // already consumed a real signal).
    pthread_kill(watcher.native_handle(), SIGTERM);
    watcher.join();
    stop_all();  // idempotent
    core.shutdown();
    std::printf("smpmsf-server: stopped\n");
    return 0;
  } catch (const smp::Error& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return ex.code() == smp::ErrorCode::kInvalidInput ? 3 : 1;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
}
