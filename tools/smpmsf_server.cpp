// smpmsf-server — the MSF serving daemon: a ServiceCore behind an AF_UNIX
// line-protocol socket (grammar in docs/SERVING.md).
//
//   smpmsf-server --socket PATH [--threads P] [--dispatchers N]
//                 [--queue-cap N] [--default-deadline MS]
//                 [--coalesce-window MS] [--alg A] [--seed S]
//                 [--data-dir DIR] [--fsync always|interval|none]
//                 [--fsync-interval MS] [--snapshot-every RECORDS]
//                 [--snapshot-retain N] [--crash-at SITE[:SKIP]]
//
// With --data-dir every session is durable: acknowledged writes are
// WAL-logged and group-committed under the chosen fsync policy, snapshots
// truncate the log, and startup recovers whatever the directory holds.
// --crash-at arms a process-killing fault at a named persist crash point
// (chaos testing; see tools/chaos_recovery.py).
//
// Runs in the foreground until SIGINT/SIGTERM or a client sends the
// `shutdown` verb; either way it drains admitted requests, disconnects
// clients, unlinks the socket and exits 0.  Exit codes otherwise match the
// CLI: 2 usage, 3 invalid input.
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "core/error.hpp"
#include "core/msf.hpp"
#include "persist/wal.hpp"
#include "pprim/fault.hpp"
#include "serve/service_core.hpp"
#include "serve/uds_server.hpp"

namespace {

using namespace smp;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: smpmsf-server --socket PATH [--threads P]"
               " [--dispatchers N] [--queue-cap N]\n"
               "                     [--default-deadline MS]"
               " [--coalesce-window MS] [--alg A] [--seed S]\n"
               "                     [--data-dir DIR]"
               " [--fsync always|interval|none] [--fsync-interval MS]\n"
               "                     [--snapshot-every RECORDS]"
               " [--snapshot-retain N] [--crash-at SITE[:SKIP]]\n");
  std::exit(2);
}

core::Algorithm parse_algorithm(const std::string& s) {
  // The serving default is the paper's fused variant; anything the CLI
  // accepts works here too (the core reuses the same MsfOptions).
  static constexpr struct {
    const char* name;
    core::Algorithm alg;
  } kTable[] = {
      {"bor-el", core::Algorithm::kBorEL},
      {"bor-al", core::Algorithm::kBorAL},
      {"bor-alm", core::Algorithm::kBorALM},
      {"bor-fal", core::Algorithm::kBorFAL},
      {"mst-bc", core::Algorithm::kMstBC},
      {"bor-uf", core::Algorithm::kBorUF},
      {"par-kruskal", core::Algorithm::kParKruskal},
      {"filter-kruskal", core::Algorithm::kFilterKruskal},
      {"sample-filter", core::Algorithm::kSampleFilter},
      {"prim", core::Algorithm::kSeqPrim},
      {"kruskal", core::Algorithm::kSeqKruskal},
      {"boruvka", core::Algorithm::kSeqBoruvka},
  };
  std::string valid;
  for (const auto& row : kTable) {
    if (s == row.name) return row.alg;
    if (!valid.empty()) valid += ' ';
    valid += row.name;
  }
  throw Error(ErrorCode::kInvalidInput,
              "unknown algorithm '" + s + "' (valid: " + valid + ")");
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string crash_at;
  serve::ServeOptions opts;
  try {
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      const auto value = [&]() -> std::string {
        if (i + 1 >= argc) usage(("missing value for " + a).c_str());
        return argv[++i];
      };
      if (a == "--socket") {
        socket_path = value();
      } else if (a == "--threads") {
        opts.msf.threads = std::atoi(value().c_str());
      } else if (a == "--dispatchers") {
        opts.dispatchers = std::atoi(value().c_str());
      } else if (a == "--queue-cap") {
        opts.queue_capacity =
            static_cast<std::size_t>(std::strtoull(value().c_str(), nullptr, 10));
      } else if (a == "--default-deadline") {
        opts.default_deadline_s = std::strtod(value().c_str(), nullptr) / 1000.0;
      } else if (a == "--coalesce-window") {
        opts.coalesce_window_s = std::strtod(value().c_str(), nullptr) / 1000.0;
      } else if (a == "--alg") {
        opts.msf.algorithm = parse_algorithm(value());
      } else if (a == "--seed") {
        opts.msf.seed = std::strtoull(value().c_str(), nullptr, 10);
      } else if (a == "--data-dir") {
        opts.data_dir = value();
      } else if (a == "--fsync") {
        opts.fsync = persist::parse_fsync_policy(value());
      } else if (a == "--fsync-interval") {
        opts.fsync_interval_s = std::strtod(value().c_str(), nullptr) / 1000.0;
      } else if (a == "--snapshot-every") {
        opts.snapshot_every_records =
            std::strtoull(value().c_str(), nullptr, 10);
      } else if (a == "--snapshot-retain") {
        opts.snapshot_retain = std::atoi(value().c_str());
      } else if (a == "--crash-at") {
        crash_at = value();
      } else {
        usage(("unknown flag " + a).c_str());
      }
    }
    if (socket_path.empty()) usage("--socket PATH is required");
    if (!crash_at.empty()) {
      // Chaos harness: kill this process (exit 137, no flush, no
      // destructors) at the (SKIP+1)-th hit of a named persist crash point.
      std::uint64_t skip = 0;
      std::string site = crash_at;
      const auto colon = crash_at.rfind(':');
      if (colon != std::string::npos) {
        site = crash_at.substr(0, colon);
        skip = std::strtoull(crash_at.c_str() + colon + 1, nullptr, 10);
      }
      FaultInjector::arm(site, FaultKind::kCrash, skip);
    }

    // Block the termination signals in every thread, then watch them from a
    // dedicated sigwait thread — the only async-signal-safe way to run the
    // full graceful teardown (drain, join, unlink) on a signal.
    sigset_t sigs;
    sigemptyset(&sigs);
    sigaddset(&sigs, SIGINT);
    sigaddset(&sigs, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &sigs, nullptr);
    signal(SIGPIPE, SIG_IGN);

    serve::ServiceCore core(opts);
    for (const std::string& note : core.recovery_notes()) {
      std::printf("smpmsf-server: %s\n", note.c_str());
    }
    serve::UdsServer server(core, {.socket_path = socket_path});
    server.start();
    std::printf("smpmsf-server: listening on %s (threads=%d dispatchers=%d"
                " queue=%zu",
                socket_path.c_str(), core.options().msf.threads,
                core.options().dispatchers, core.options().queue_capacity);
    if (!opts.data_dir.empty()) {
      std::printf(" data-dir=%s fsync=%s", opts.data_dir.c_str(),
                  std::string(persist::to_string(core.options().fsync)).c_str());
    }
    std::printf(")\n");
    std::fflush(stdout);

    std::atomic<bool> exiting{false};
    std::thread watcher([&] {
      int sig = 0;
      sigwait(&sigs, &sig);
      if (exiting.load()) return;  // woken by main for a clean wire shutdown
      std::printf("smpmsf-server: caught %s, draining\n", strsignal(sig));
      std::fflush(stdout);
      server.stop();
    });

    server.wait();   // a wire `shutdown` or the watcher's stop() wakes this
    exiting.store(true);
    // Unblock the watcher if the shutdown came over the wire (no-op if it
    // already consumed a real signal).
    pthread_kill(watcher.native_handle(), SIGTERM);
    watcher.join();
    server.stop();   // idempotent
    core.shutdown();
    std::printf("smpmsf-server: stopped\n");
    return 0;
  } catch (const smp::Error& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return ex.code() == smp::ErrorCode::kInvalidInput ? 3 : 1;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
}
