#!/usr/bin/env python3
"""Crash-point chaos harness for the durable serving layer.

Drives smpmsf-server through kill-9 crashes at every named persist crash
point, restarts it on the same data directory, and verifies the recovered
session is bit-identical to a from-scratch Kruskal solve over a prefix of
the sent updates that covers everything the server acknowledged:

    acked  ⊆  recovered prefix  ⊆  sent

(The prefix may exceed the acked set: a record that reached the OS page
cache before a process kill legitimately survives, it just was never
acknowledged.  It must never be smaller than the acked set - that would be
a lost acknowledged write.)

Modes:
    crash    kill-9 loop over all crash points (default --snapshot-every
             traffic so the snapshot/rename points fire mid-stream)
    corpus   corrupt-log corpus: torn tail, bit-flipped CRC, zero-length
             segment, duplicate LSN - recovery must repair the first three
             shapes' recoverable variants and refuse the unrecoverable ones
             with a clear diagnostic
    all      both (default)

Usage:
    tools/chaos_recovery.py --server build/tools/smpmsf-server \
        --client build/tools/smpmsf-client [--workdir DIR] [--mode all]

Exit code 0 when every scenario behaves as specified, 1 otherwise.
"""

import argparse
import glob
import os
import shutil
import signal
import struct
import subprocess
import sys
import tempfile
import time

CRASH_SITES = [
    # (site:skip, needs frequent snapshots to be reachable mid-stream)
    ("persist.pre_append:3", False),
    ("persist.mid_append:3", False),
    ("persist.post_append:3", False),
    ("persist.pre_ack:3", False),
    # Skip past the open()'s initial snapshot so the crash lands on a
    # snapshot taken while acknowledged writes are in flight.
    ("persist.mid_snapshot:2", True),
    ("persist.mid_rename:2", True),
]

N_VERTICES = 60  # wire protocol is 1-based: vertices 1..60
MAX_SENDS = 40

FAILURES = []


def fail(msg):
    print(f"FAIL: {msg}")
    FAILURES.append(msg)


def gen_edges(count):
    """Deterministic simple edges with distinct weights (unique MSF)."""
    edges, seen, i = [], set(), 0
    while len(edges) < count:
        u = i % N_VERTICES + 1
        v = (i * 13 + 29) % N_VERTICES + 1
        i += 1
        key = (min(u, v), max(u, v))
        if u == v or key in seen:
            continue
        seen.add(key)
        edges.append((u, v, 1.0 + 0.001 * len(edges)))
    return edges


def kruskal(n, edges):
    """(total weight, tree count, frozenset of forest (u,v) pairs)."""
    parent = list(range(n + 1))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    picked, weight = [], 0.0
    for u, v, w in sorted(edges, key=lambda e: e[2]):
        ru, rv = find(u), find(v)
        if ru != rv:
            parent[ru] = rv
            picked.append((min(u, v), max(u, v)))
            weight += w
    return weight, n - len(picked), frozenset(picked)


class Server:
    def __init__(self, binary, sock, data_dir, extra=()):
        self.proc = subprocess.Popen(
            [binary, "--socket", sock, "--data-dir", data_dir,
             "--fsync", "always", *extra],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        self.sock = sock

    def wait_exit(self, timeout=30):
        out, err = self.proc.communicate(timeout=timeout)
        return self.proc.returncode, out, err

    def terminate(self):
        self.proc.send_signal(signal.SIGTERM)
        return self.wait_exit()


def client_cmd(client, sock, cmd, retries=0):
    """One command over one connection; returns (rc, first response line)."""
    r = subprocess.run(
        [client, "--socket", sock, "-e", cmd, "--retries", str(retries)],
        capture_output=True, text=True)
    first = r.stdout.splitlines()[0] if r.stdout.splitlines() else ""
    return r.returncode, first


def client_lines(client, sock, cmd):
    r = subprocess.run([client, "--socket", sock, "-e", cmd],
                       capture_output=True, text=True)
    return r.returncode, r.stdout.splitlines()


def wait_health(client, sock, deadline_s=15):
    """Poll the health verb until the server answers (or time out)."""
    end = time.monotonic() + deadline_s
    while time.monotonic() < end:
        rc, line = client_cmd(client, sock, "health")
        if rc == 0 and line.startswith("ok "):
            return True
        time.sleep(0.05)
    return False


def parse_facts(line):
    """'ok weight=1.5 trees=3 forest=2 live=4 ...' -> dict of the k=v."""
    facts = {}
    for tok in line.split()[1:]:
        if "=" in tok:
            k, v = tok.split("=", 1)
            facts[k] = v
    return facts


def read_state(client, sock):
    rc, line = client_cmd(client, sock, "weight g")
    if rc != 0 or not line.startswith("ok"):
        return None
    facts = parse_facts(line)
    rc, lines = client_lines(client, sock, "edges g")
    if rc != 0:
        return None
    forest = frozenset(
        (min(int(t[1]), int(t[2])), max(int(t[1]), int(t[2])))
        for t in (ln.split() for ln in lines) if t and t[0] == "e")
    return {
        "weight": float(facts["weight"]),
        "trees": int(facts["trees"]),
        "live": int(facts["live"]),
        "forest": forest,
    }


def verify_against_prefix(tag, state, edges, acked, sent):
    live = state["live"]
    if not acked <= live <= sent:
        fail(f"{tag}: recovered {live} updates, acked {acked}, sent {sent}")
        return
    weight, trees, forest = kruskal(N_VERTICES, edges[:live])
    if abs(state["weight"] - weight) > 1e-9:
        fail(f"{tag}: weight {state['weight']} != scratch {weight}")
    if state["trees"] != trees:
        fail(f"{tag}: trees {state['trees']} != scratch {trees}")
    if state["forest"] != forest:
        fail(f"{tag}: forest differs from the scratch solve: "
             f"{sorted(state['forest'] ^ forest)}")


def crash_trial(args, site, with_snapshots):
    tag = f"crash[{site}]"
    data = os.path.join(args.workdir, "crash_" + site.replace(":", "_")
                        .replace(".", "_"))
    shutil.rmtree(data, ignore_errors=True)
    sock = os.path.join(args.workdir, "chaos.sock")
    extra = ("--snapshot-every", "2") if with_snapshots else ()
    srv = Server(args.server, sock, data, ("--crash-at", site, *extra))
    if not wait_health(args.client, sock):
        srv.proc.kill()
        fail(f"{tag}: server never became healthy")
        return
    rc, line = client_cmd(args.client, sock, f"open g n={N_VERTICES}")
    if rc != 0 or not line.startswith("ok"):
        srv.proc.kill()
        fail(f"{tag}: open failed: {line}")
        return

    edges = gen_edges(MAX_SENDS)
    acked = sent = 0
    for u, v, w in edges:
        sent += 1
        rc, line = client_cmd(args.client, sock,
                              f"insert g {u} {v} {w:.3f}")
        if rc == 0 and line.startswith("ok"):
            acked += 1
        else:
            break  # connection lost: the armed crash point fired
        if srv.proc.poll() is not None:
            break
    rc, out, err = srv.wait_exit()
    if rc != 137:
        fail(f"{tag}: expected kill-9 exit 137, got {rc} ({err.strip()})")
        return
    if sent == MAX_SENDS and acked == MAX_SENDS:
        fail(f"{tag}: the crash point never fired in {MAX_SENDS} writes")
        return

    srv = Server(args.server, sock, data, extra)
    if not wait_health(args.client, sock):
        srv.proc.kill()
        fail(f"{tag}: server did not recover")
        return
    state = read_state(args.client, sock)
    if state is None:
        srv.terminate()
        fail(f"{tag}: could not read recovered state")
        return
    verify_against_prefix(tag, state, edges, acked, sent)
    rc, out, err = srv.terminate()
    if rc != 0:
        fail(f"{tag}: graceful shutdown after recovery exited {rc}")
        return
    if "recovered session 'g'" not in out:
        fail(f"{tag}: restart printed no recovery note:\n{out}")
        return
    print(f"ok   {tag}: acked={acked} recovered={state['live']} sent={sent}")


def wal_segments(data, session="g"):
    return sorted(glob.glob(os.path.join(data, session, "wal-*.log")))


def wal_frames(path):
    """Offsets and sizes of the length-prefixed CRC-framed records."""
    frames = []
    with open(path, "rb") as f:
        buf = f.read()
    off = 0
    while off + 8 <= len(buf):
        (length,) = struct.unpack_from("<I", buf, off)
        if off + 8 + length > len(buf):
            break
        frames.append((off, 8 + length))
        off += 8 + length
    return buf, frames


def make_base_dir(args, name):
    """A durable session with several committed WAL records and no clean
    marker (the server is killed, not drained)."""
    data = os.path.join(args.workdir, name)
    shutil.rmtree(data, ignore_errors=True)
    sock = os.path.join(args.workdir, "chaos.sock")
    srv = Server(args.server, sock, data)
    if not wait_health(args.client, sock):
        srv.proc.kill()
        raise RuntimeError("corpus base: server never became healthy")
    edges = gen_edges(6)
    client_cmd(args.client, sock, f"open g n={N_VERTICES}")
    for u, v, w in edges:
        rc, line = client_cmd(args.client, sock, f"insert g {u} {v} {w:.3f}")
        if rc != 0 or not line.startswith("ok"):
            srv.proc.kill()
            raise RuntimeError(f"corpus base: insert failed: {line}")
    srv.proc.send_signal(signal.SIGKILL)
    srv.proc.wait()
    return data, edges


def expect_recovers(args, tag, data, edges, live, note=None):
    sock = os.path.join(args.workdir, "chaos.sock")
    srv = Server(args.server, sock, data)
    if not wait_health(args.client, sock):
        srv.proc.kill()
        fail(f"{tag}: server refused a recoverable directory")
        return
    state = read_state(args.client, sock)
    rc, out, err = srv.terminate()
    if state is None:
        fail(f"{tag}: could not read recovered state")
        return
    if state["live"] != live:
        fail(f"{tag}: recovered {state['live']} updates, want {live}")
        return
    verify_against_prefix(tag, state, edges, live, live)
    if note is not None and note not in out:
        fail(f"{tag}: expected recovery note containing '{note}':\n{out}")
        return
    print(f"ok   {tag}: recovered {live} updates")


def expect_refuses(args, tag, data, diagnostic):
    sock = os.path.join(args.workdir, "chaos.sock")
    srv = Server(args.server, sock, data)
    rc, out, err = srv.wait_exit()
    if rc != 3:
        srv.proc.kill()
        fail(f"{tag}: expected invalid-input exit 3, got {rc}")
        return
    if diagnostic not in err:
        fail(f"{tag}: diagnostic missing '{diagnostic}':\n{err}")
        return
    print(f"ok   {tag}: refused with '{diagnostic}' diagnostic")


def corpus_trials(args):
    # Torn tail: cut the last record in half - recovery truncates it and
    # serves the remaining prefix.
    data, edges = make_base_dir(args, "corpus_torn")
    seg = wal_segments(data)[-1]
    buf, frames = wal_frames(seg)
    off, size = frames[-1]
    with open(seg, "r+b") as f:
        f.truncate(off + size // 2)
    expect_recovers(args, "corpus[torn-tail]", data, edges, len(edges) - 1,
                    note="torn tail truncated")

    # Bit-flipped payload: a complete frame whose CRC fails is corruption,
    # and recovery must refuse rather than guess.
    data, edges = make_base_dir(args, "corpus_flip")
    seg = wal_segments(data)[-1]
    buf, frames = wal_frames(seg)
    off, size = frames[0]
    with open(seg, "r+b") as f:
        f.seek(off + 12)
        byte = f.read(1)
        f.seek(off + 12)
        f.write(bytes([byte[0] ^ 0x40]))
    expect_refuses(args, "corpus[bit-flip]", data, "corrupt WAL record")

    # Zero-length segment: a crash right at rotation leaves an empty file,
    # which is a valid empty tail - the snapshot state must serve.
    data, edges = make_base_dir(args, "corpus_zero")
    seg = wal_segments(data)[-1]
    with open(seg, "r+b") as f:
        f.truncate(0)
    expect_recovers(args, "corpus[zero-length]", data, edges, 0)

    # Duplicate LSN: replaying the same commit twice would double-apply, so
    # recovery must refuse the log.
    data, edges = make_base_dir(args, "corpus_dup")
    seg = wal_segments(data)[-1]
    buf, frames = wal_frames(seg)
    off, size = frames[-1]
    with open(seg, "ab") as f:
        f.write(buf[off:off + size])
    expect_refuses(args, "corpus[duplicate-lsn]", data, "duplicate")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--server", default="build/tools/smpmsf-server")
    ap.add_argument("--client", default="build/tools/smpmsf-client")
    ap.add_argument("--workdir", default=None)
    ap.add_argument("--mode", choices=["crash", "corpus", "all"],
                    default="all")
    args = ap.parse_args()
    for b in (args.server, args.client):
        if not os.path.exists(b):
            print(f"error: binary not found: {b}")
            return 2
    owns_workdir = args.workdir is None
    if owns_workdir:
        args.workdir = tempfile.mkdtemp(prefix="smpmsf_chaos_")
    os.makedirs(args.workdir, exist_ok=True)

    try:
        if args.mode in ("crash", "all"):
            for site, with_snapshots in CRASH_SITES:
                crash_trial(args, site, with_snapshots)
        if args.mode in ("corpus", "all"):
            corpus_trials(args)
    finally:
        if owns_workdir:
            shutil.rmtree(args.workdir, ignore_errors=True)

    if FAILURES:
        print(f"\n{len(FAILURES)} scenario(s) failed")
        return 1
    print("\nall chaos scenarios passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
