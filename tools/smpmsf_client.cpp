// smpmsf-client — line-protocol client for smpmsf-server.
//
//   smpmsf-client --socket PATH [-e "CMD"]... [--script FILE] [--clients N]
//
// Commands come from -e flags (in order), a script file, or stdin (one per
// line; blank lines and # comments skipped).  --clients N runs the same
// command list over N concurrent connections, tagging output lines [i] —
// the one-binary way to put multiple concurrent clients on a session.
//
// Exit codes: 0 every response ok, 1 any err response or lost connection,
// 2 usage, 3 cannot connect.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "serve/uds_client.hpp"

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: smpmsf-client --socket PATH [-e \"CMD\"]..."
               " [--script FILE] [--clients N]\n");
  std::exit(2);
}

std::mutex print_mu;

/// Runs the command list over one connection; returns 1 on any err.
int run_commands(const std::string& socket_path,
                 const std::vector<std::string>& commands, int idx, bool tag) {
  int rc = 0;
  try {
    smp::serve::UdsClient client(socket_path);
    for (const std::string& cmd : commands) {
      const std::vector<std::string> resp = client.request(cmd);
      std::lock_guard<std::mutex> lk(print_mu);
      for (const std::string& line : resp) {
        if (tag) {
          std::printf("[%d] %s\n", idx, line.c_str());
        } else {
          std::printf("%s\n", line.c_str());
        }
      }
      if (resp.front().rfind("err", 0) == 0) rc = 1;
    }
  } catch (const smp::Error& ex) {
    std::lock_guard<std::mutex> lk(print_mu);
    std::fprintf(stderr, "client %d: %s\n", idx, ex.what());
    return 1;
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string script;
  std::vector<std::string> commands;
  int clients = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = value();
    } else if (a == "-e") {
      commands.push_back(value());
    } else if (a == "--script") {
      script = value();
    } else if (a == "--clients") {
      clients = std::atoi(value().c_str());
    } else {
      usage(("unknown flag " + a).c_str());
    }
  }
  if (socket_path.empty()) usage("--socket PATH is required");
  if (clients < 1) usage("--clients must be >= 1");

  if (!script.empty()) {
    std::ifstream is(script);
    if (!is) {
      std::fprintf(stderr, "error: cannot open %s\n", script.c_str());
      return 2;
    }
    for (std::string line; std::getline(is, line);) commands.push_back(line);
  } else if (commands.empty()) {
    for (std::string line; std::getline(std::cin, line);) {
      commands.push_back(line);
    }
  }
  // Drop blanks and comments here so every connection replays the same list.
  std::vector<std::string> cleaned;
  for (const std::string& c : commands) {
    const std::size_t pos = c.find_first_not_of(" \t");
    if (pos == std::string::npos || c[pos] == '#') continue;
    cleaned.push_back(c);
  }
  if (cleaned.empty()) usage("no commands (use -e, --script or stdin)");

  // Probe the socket once so "nothing is listening" is a distinct exit code.
  try {
    smp::serve::UdsClient probe(socket_path);
  } catch (const smp::Error& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 3;
  }

  if (clients == 1) return run_commands(socket_path, cleaned, 0, false);
  std::vector<int> rcs(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      rcs[static_cast<std::size_t>(i)] =
          run_commands(socket_path, cleaned, i, true);
    });
  }
  int rc = 0;
  for (int i = 0; i < clients; ++i) {
    threads[static_cast<std::size_t>(i)].join();
    rc |= rcs[static_cast<std::size_t>(i)];
  }
  return rc;
}
