// smpmsf-client — line-protocol client for smpmsf-server.
//
//   smpmsf-client --socket PATH [-e "CMD"]... [--script FILE] [--clients N]
//                 [--retries N] [--backoff-ms MS]
//
// Commands come from -e flags (in order), a script file, or stdin (one per
// line; blank lines and # comments skipped).  --clients N runs the same
// command list over N concurrent connections, tagging output lines [i] —
// the one-binary way to put multiple concurrent clients on a session.
//
// --retries N survives a lost connection (server restart, crash+recovery):
// the client reconnects with exponential backoff + jitter and resends the
// command whose response it never saw.  Every insert/delete is stamped with
// a unique idempotency id (unless the command carries its own id=), so a
// resend of a write the server already committed dedups server-side instead
// of applying twice — the response says dedup=1 and echoes the original
// commit LSN.
//
// Exit codes: 0 every response ok, 1 any err response or lost connection,
// 2 usage, 3 cannot connect.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "serve/uds_client.hpp"

namespace {

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: smpmsf-client --socket PATH [-e \"CMD\"]..."
               " [--script FILE] [--clients N]\n"
               "                     [--retries N] [--backoff-ms MS]\n");
  std::exit(2);
}

std::mutex print_mu;

bool is_write_command(const std::string& cmd) {
  return cmd.rfind("insert ", 0) == 0 || cmd.rfind("delete ", 0) == 0;
}

bool has_idem_id(const std::string& cmd) {
  return cmd.find(" id=") != std::string::npos;
}

/// Runs the command list over one connection, reconnecting up to `retries`
/// times on a lost connection; returns 1 on any err response or when the
/// retries are exhausted.
int run_commands(const std::string& socket_path,
                 std::vector<std::string> commands, int idx, bool tag,
                 int retries, int backoff_ms) {
  // Stamp writes with per-run-unique idempotency ids so a resend after a
  // reconnect cannot double-apply.  The nonce keeps ids from colliding
  // across client invocations against the same long-lived session.
  std::mt19937_64 rng(std::random_device{}() ^
                      (static_cast<std::uint64_t>(::getpid()) << 32) ^
                      static_cast<std::uint64_t>(idx));
  char nonce[17];
  std::snprintf(nonce, sizeof nonce, "%016llx",
                static_cast<unsigned long long>(rng()));
  for (std::size_t k = 0; k < commands.size(); ++k) {
    if (is_write_command(commands[k]) && !has_idem_id(commands[k])) {
      commands[k] += " id=c" + std::to_string(idx) + "-" + nonce + "-" +
                     std::to_string(k);
    }
  }

  int rc = 0;
  int attempts_left = retries;
  std::unique_ptr<smp::serve::UdsClient> client;
  std::size_t k = 0;
  while (k < commands.size()) {
    try {
      if (client == nullptr) {
        client = std::make_unique<smp::serve::UdsClient>(socket_path);
      }
      const std::vector<std::string> resp = client->request(commands[k]);
      std::lock_guard<std::mutex> lk(print_mu);
      for (const std::string& line : resp) {
        if (tag) {
          std::printf("[%d] %s\n", idx, line.c_str());
        } else {
          std::printf("%s\n", line.c_str());
        }
      }
      if (resp.front().rfind("err", 0) == 0) rc = 1;
      ++k;
    } catch (const smp::Error& ex) {
      client.reset();
      if (attempts_left <= 0) {
        std::lock_guard<std::mutex> lk(print_mu);
        std::fprintf(stderr, "client %d: %s\n", idx, ex.what());
        return 1;
      }
      // Exponential backoff with full jitter: 2^attempt * backoff_ms, drawn
      // uniformly from [delay/2, delay] so a fleet of reconnecting clients
      // does not stampede the restarting server in lockstep.
      const int attempt = retries - attempts_left;
      --attempts_left;
      double delay = static_cast<double>(backoff_ms);
      for (int b = 0; b < attempt && delay < 10'000; ++b) delay *= 2;
      std::uniform_real_distribution<double> jitter(delay / 2, delay);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(jitter(rng)));
      // Loop around: reconnect and resend command k (its idempotency id
      // makes the resend safe even if the server committed it already).
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string script;
  std::vector<std::string> commands;
  int clients = 1;
  int retries = 0;
  int backoff_ms = 50;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--socket") {
      socket_path = value();
    } else if (a == "-e") {
      commands.push_back(value());
    } else if (a == "--script") {
      script = value();
    } else if (a == "--clients") {
      clients = std::atoi(value().c_str());
    } else if (a == "--retries") {
      retries = std::atoi(value().c_str());
    } else if (a == "--backoff-ms") {
      backoff_ms = std::atoi(value().c_str());
    } else {
      usage(("unknown flag " + a).c_str());
    }
  }
  if (socket_path.empty()) usage("--socket PATH is required");
  if (clients < 1) usage("--clients must be >= 1");
  if (retries < 0) usage("--retries must be >= 0");
  if (backoff_ms < 1) usage("--backoff-ms must be >= 1");

  if (!script.empty()) {
    std::ifstream is(script);
    if (!is) {
      std::fprintf(stderr, "error: cannot open %s\n", script.c_str());
      return 2;
    }
    for (std::string line; std::getline(is, line);) commands.push_back(line);
  } else if (commands.empty()) {
    for (std::string line; std::getline(std::cin, line);) {
      commands.push_back(line);
    }
  }
  // Drop blanks and comments here so every connection replays the same list.
  std::vector<std::string> cleaned;
  for (const std::string& c : commands) {
    const std::size_t pos = c.find_first_not_of(" \t");
    if (pos == std::string::npos || c[pos] == '#') continue;
    cleaned.push_back(c);
  }
  if (cleaned.empty()) usage("no commands (use -e, --script or stdin)");

  // Probe the socket so "nothing is listening" is a distinct exit code;
  // with --retries the probe waits out a server that is still restarting.
  for (int left = retries;;) {
    try {
      smp::serve::UdsClient probe(socket_path);
      break;
    } catch (const smp::Error& ex) {
      if (left-- <= 0) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 3;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }

  if (clients == 1) {
    return run_commands(socket_path, cleaned, 0, false, retries, backoff_ms);
  }
  std::vector<int> rcs(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      rcs[static_cast<std::size_t>(i)] =
          run_commands(socket_path, cleaned, i, true, retries, backoff_ms);
    });
  }
  int rc = 0;
  for (int i = 0; i < clients; ++i) {
    threads[static_cast<std::size_t>(i)].join();
    rc |= rcs[static_cast<std::size_t>(i)];
  }
  return rc;
}
