// smpmsf-client — client for smpmsf-server, over either transport.
//
//   smpmsf-client --socket PATH|tcp://HOST:PORT [-e "CMD"]... [--script FILE]
//                 [--clients N] [--retries N] [--backoff-ms MS]
//
// A plain PATH speaks the UDS line protocol; a tcp://HOST:PORT target
// speaks the binary frame protocol (src/net) and renders responses through
// the same line-protocol renderer, so output is byte-identical between
// transports.  Commands come from -e flags (in order), a script file, or
// stdin (one per line; blank lines and # comments skipped).  --clients N
// runs the same command list over N concurrent connections, tagging output
// lines [i] — the one-binary way to put multiple concurrent clients on a
// session.
//
// --retries N survives a lost connection (server restart, crash+recovery):
// the client reconnects with exponential backoff + jitter and resends the
// command whose response it never saw.  Every insert/delete is stamped with
// a unique idempotency id (unless the command carries its own id=), so a
// resend of a write the server already committed dedups server-side instead
// of applying twice — the response says dedup=1 and echoes the original
// commit LSN.  The semantics are transport-independent.
//
// Exit codes: 0 every response ok, 1 any err response or lost connection,
// 2 usage, 3 cannot connect.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "net/tcp_client.hpp"
#include "serve/protocol.hpp"
#include "serve/uds_client.hpp"

namespace {

using namespace smp;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: smpmsf-client --socket PATH|tcp://HOST:PORT"
               " [-e \"CMD\"]...\n"
               "                     [--script FILE] [--clients N]\n"
               "                     [--retries N] [--backoff-ms MS]\n");
  std::exit(2);
}

std::mutex print_mu;

/// Where to connect: a UDS path, or host+port when `tcp` is set.
struct Endpoint {
  bool tcp = false;
  std::string path_or_host;
  std::uint16_t port = 0;
};

Endpoint parse_endpoint(const std::string& target) {
  Endpoint ep;
  if (target.rfind("tcp://", 0) != 0) {
    ep.path_or_host = target;
    return ep;
  }
  const std::string rest = target.substr(6);
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == rest.size()) {
    usage(("bad tcp target '" + target + "' (want tcp://HOST:PORT)").c_str());
  }
  ep.tcp = true;
  ep.path_or_host = rest.substr(0, colon);
  const long port = std::strtol(rest.c_str() + colon + 1, nullptr, 10);
  if (port < 1 || port > 65535) {
    usage(("bad port in '" + target + "'").c_str());
  }
  ep.port = static_cast<std::uint16_t>(port);
  return ep;
}

/// One connection, either transport, presenting the line-protocol surface:
/// send a command line, get back the response lines.  Connection loss
/// throws smp::Error (the retry loop's signal); a malformed command over
/// TCP is parsed client-side and answered with the same `err invalid_input`
/// line the server would send, keeping output transport-identical.
class Conn {
 public:
  virtual ~Conn() = default;
  virtual std::vector<std::string> request(const std::string& line) = 0;
};

class UdsConn : public Conn {
 public:
  explicit UdsConn(const std::string& path) : client_(path) {}
  std::vector<std::string> request(const std::string& line) override {
    return client_.request(line);
  }

 private:
  serve::UdsClient client_;
};

class TcpConn : public Conn {
 public:
  TcpConn(const std::string& host, std::uint16_t port) : client_(host, port) {}

  std::vector<std::string> request(const std::string& line) override {
    serve::WireRequest wr;
    try {
      wr = serve::parse_line(line);
    } catch (const Error& e) {
      return {std::string("err invalid_input ") + e.what()};
    }
    if (wr.quit || wr.shutdown) {
      if (wr.shutdown) {
        client_.shutdown();
      } else {
        client_.quit();
      }
      return {"ok"};
    }
    const serve::Response resp = client_.call(wr.req);
    return split_lines(serve::render_response(wr.req.op, resp));
  }

 private:
  static std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::size_t start = 0;
    for (std::size_t nl = text.find('\n', start); nl != std::string::npos;
         nl = text.find('\n', start)) {
      lines.push_back(text.substr(start, nl - start));
      start = nl + 1;
    }
    if (start < text.size()) lines.push_back(text.substr(start));
    // The renderer terminates multi-line payloads with a lone "." that the
    // UDS client also strips; drop it for identical output.
    if (!lines.empty() && lines.back() == ".") lines.pop_back();
    return lines;
  }

  net::TcpClient client_;
};

std::unique_ptr<Conn> connect(const Endpoint& ep) {
  if (ep.tcp) {
    return std::make_unique<TcpConn>(ep.path_or_host, ep.port);
  }
  return std::make_unique<UdsConn>(ep.path_or_host);
}

bool is_write_command(const std::string& cmd) {
  return cmd.rfind("insert ", 0) == 0 || cmd.rfind("delete ", 0) == 0;
}

bool has_idem_id(const std::string& cmd) {
  return cmd.find(" id=") != std::string::npos;
}

/// Runs the command list over one connection, reconnecting up to `retries`
/// times on a lost connection; returns 1 on any err response or when the
/// retries are exhausted.
int run_commands(const Endpoint& ep, std::vector<std::string> commands,
                 int idx, bool tag, int retries, int backoff_ms) {
  // Stamp writes with per-run-unique idempotency ids so a resend after a
  // reconnect cannot double-apply.  The nonce keeps ids from colliding
  // across client invocations against the same long-lived session.
  std::mt19937_64 rng(std::random_device{}() ^
                      (static_cast<std::uint64_t>(::getpid()) << 32) ^
                      static_cast<std::uint64_t>(idx));
  char nonce[17];
  std::snprintf(nonce, sizeof nonce, "%016llx",
                static_cast<unsigned long long>(rng()));
  for (std::size_t k = 0; k < commands.size(); ++k) {
    if (is_write_command(commands[k]) && !has_idem_id(commands[k])) {
      commands[k] += " id=c" + std::to_string(idx) + "-" + nonce + "-" +
                     std::to_string(k);
    }
  }

  int rc = 0;
  int attempts_left = retries;
  std::unique_ptr<Conn> client;
  std::size_t k = 0;
  while (k < commands.size()) {
    try {
      if (client == nullptr) client = connect(ep);
      const std::vector<std::string> resp = client->request(commands[k]);
      std::lock_guard<std::mutex> lk(print_mu);
      for (const std::string& line : resp) {
        if (tag) {
          std::printf("[%d] %s\n", idx, line.c_str());
        } else {
          std::printf("%s\n", line.c_str());
        }
      }
      if (resp.front().rfind("err", 0) == 0) rc = 1;
      ++k;
    } catch (const smp::Error& ex) {
      client.reset();
      if (attempts_left <= 0) {
        std::lock_guard<std::mutex> lk(print_mu);
        std::fprintf(stderr, "client %d: %s\n", idx, ex.what());
        return 1;
      }
      // Exponential backoff with full jitter: 2^attempt * backoff_ms, drawn
      // uniformly from [delay/2, delay] so a fleet of reconnecting clients
      // does not stampede the restarting server in lockstep.
      const int attempt = retries - attempts_left;
      --attempts_left;
      double delay = static_cast<double>(backoff_ms);
      for (int b = 0; b < attempt && delay < 10'000; ++b) delay *= 2;
      std::uniform_real_distribution<double> jitter(delay / 2, delay);
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(jitter(rng)));
      // Loop around: reconnect and resend command k (its idempotency id
      // makes the resend safe even if the server committed it already).
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  std::string target;
  std::string script;
  std::vector<std::string> commands;
  int clients = 1;
  int retries = 0;
  int backoff_ms = 50;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      return argv[++i];
    };
    if (a == "--socket") {
      target = value();
    } else if (a == "-e") {
      commands.push_back(value());
    } else if (a == "--script") {
      script = value();
    } else if (a == "--clients") {
      clients = std::atoi(value().c_str());
    } else if (a == "--retries") {
      retries = std::atoi(value().c_str());
    } else if (a == "--backoff-ms") {
      backoff_ms = std::atoi(value().c_str());
    } else {
      usage(("unknown flag " + a).c_str());
    }
  }
  if (target.empty()) usage("--socket PATH|tcp://HOST:PORT is required");
  if (clients < 1) usage("--clients must be >= 1");
  if (retries < 0) usage("--retries must be >= 0");
  if (backoff_ms < 1) usage("--backoff-ms must be >= 1");
  const Endpoint ep = parse_endpoint(target);

  if (!script.empty()) {
    std::ifstream is(script);
    if (!is) {
      std::fprintf(stderr, "error: cannot open %s\n", script.c_str());
      return 2;
    }
    for (std::string line; std::getline(is, line);) commands.push_back(line);
  } else if (commands.empty()) {
    for (std::string line; std::getline(std::cin, line);) {
      commands.push_back(line);
    }
  }
  // Drop blanks and comments here so every connection replays the same list.
  std::vector<std::string> cleaned;
  for (const std::string& c : commands) {
    const std::size_t pos = c.find_first_not_of(" \t");
    if (pos == std::string::npos || c[pos] == '#') continue;
    cleaned.push_back(c);
  }
  if (cleaned.empty()) usage("no commands (use -e, --script or stdin)");

  // Probe the endpoint so "nothing is listening" is a distinct exit code;
  // with --retries the probe waits out a server that is still restarting.
  for (int left = retries;;) {
    try {
      connect(ep);
      break;
    } catch (const smp::Error& ex) {
      if (left-- <= 0) {
        std::fprintf(stderr, "error: %s\n", ex.what());
        return 3;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
    }
  }

  if (clients == 1) {
    return run_commands(ep, cleaned, 0, false, retries, backoff_ms);
  }
  std::vector<int> rcs(static_cast<std::size_t>(clients), 0);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    threads.emplace_back([&, i] {
      rcs[static_cast<std::size_t>(i)] =
          run_commands(ep, cleaned, i, true, retries, backoff_ms);
    });
  }
  int rc = 0;
  for (int i = 0; i < clients; ++i) {
    threads[static_cast<std::size_t>(i)].join();
    rc |= rcs[static_cast<std::size_t>(i)];
  }
  return rc;
}
