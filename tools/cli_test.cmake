# End-to-end test of the smpmsf CLI: generate → info → convert → solve →
# solve --validate, checking exit codes and key output.
file(MAKE_DIRECTORY ${WORK})

function(run_cli expect_rc out_var)
  execute_process(COMMAND ${CLI} ${ARGN}
                  OUTPUT_VARIABLE out ERROR_VARIABLE err RESULT_VARIABLE rc)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "smpmsf ${ARGN} exited ${rc} (want ${expect_rc}): ${out}${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

run_cli(0 out gen --type random --n 5000 --m 20000 --seed 7 -o ${WORK}/g.gr)
run_cli(0 out info ${WORK}/g.gr)
string(FIND "${out}" "vertices: 5000" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "info output missing vertex count: ${out}")
endif()

run_cli(0 out convert ${WORK}/g.gr ${WORK}/g.smpg)
run_cli(0 out info ${WORK}/g.smpg)

run_cli(0 out solve --alg bor-fal --threads 4 --validate ${WORK}/g.smpg)
string(FIND "${out}" "validation: OK" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "solve output missing validation: ${out}")
endif()

run_cli(0 out_a solve --alg kruskal ${WORK}/g.gr)
run_cli(0 out_b solve --alg mst-bc --threads 3 ${WORK}/g.gr)
string(REGEX MATCH "weight [0-9.]+" wa "${out_a}")
string(REGEX MATCH "weight [0-9.]+" wb "${out_b}")
if(NOT wa STREQUAL wb)
  message(FATAL_ERROR "weights differ across algorithms: '${wa}' vs '${wb}'")
endif()

run_cli(0 out cc ${WORK}/g.gr)
run_cli(0 out solve --alg sample-filter --threads 2 --validate ${WORK}/g.gr)
run_cli(0 out solve --alg filter-kruskal --validate ${WORK}/g.gr)

# Execution-budget flags: a generous timeout still solves; degradation under
# a tiny memory cap still yields a valid forest (and says so).
run_cli(0 out solve --alg bor-el --threads 4 --timeout 600 --validate ${WORK}/g.gr)
# The aggressive live threshold forces an early full rebuild so the deferred
# default still draws on the (capped) arenas.
run_cli(0 out solve --alg bor-alm --threads 4 --mem-cap 8192
        --compact-live-threshold 0.99 --validate ${WORK}/g.gr)
string(FIND "${out}" "degraded to sequential" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "mem-cap solve did not report degradation: ${out}")
endif()

# Batch-dynamic mode: replay an update trace, then check the maintained
# forest is bit-identical to a from-scratch recompute of the final graph.
file(WRITE ${WORK}/trace.txt
"c cli_test update trace
i 1 2 0.00001
i 2 3 0.00002
i 10 20 0.5
d 1 2
i 4 5 0.00003
d 2 3
d 10 20
")
run_cli(0 out solve --mode dynamic --alg bor-fal --threads 4 --batch-size 3
        --update-trace ${WORK}/trace.txt --validate ${WORK}/g.gr)
string(FIND "${out}" "validation: OK" pos)
if(pos EQUAL -1)
  message(FATAL_ERROR "dynamic solve not bit-identical to recompute: ${out}")
endif()
run_cli(0 out solve --mode static --alg bor-fal ${WORK}/g.gr)

# Error paths, one per exit code class.  Unknown enum values are invalid
# input (exit 3) and must list the accepted spellings.
run_cli(3 out solve --alg no-such-alg ${WORK}/g.gr)
run_cli(3 out solve --mode no-such-mode ${WORK}/g.gr)
run_cli(3 out solve --mode dynamic --update-trace ${WORK}/does-not-exist.txt ${WORK}/g.gr)
run_cli(2 out solve --mode dynamic ${WORK}/g.gr)  # missing --update-trace: usage
run_cli(2 out bogus-command)
run_cli(5 out solve --alg bor-fal --threads 4 --timeout 0 ${WORK}/g.gr)
run_cli(6 out solve --alg bor-alm --threads 4 --mem-cap 8192
        --compact-live-threshold 0.99 --no-fallback ${WORK}/g.gr)
# A trace deleting a dead edge is invalid input: the graph is simple after
# canonicalized load, so the second delete of {1,2} must fail whether or not
# the pair existed initially.
file(WRITE ${WORK}/bad_trace.txt "d 1 2\nd 1 2\n")
run_cli(3 out solve --mode dynamic --update-trace ${WORK}/bad_trace.txt ${WORK}/g.gr)
