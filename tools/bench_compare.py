#!/usr/bin/env python3
"""Regression gate comparing a fresh bench JSON against a committed baseline.

The gates run family-conditionally on what the *baseline* contains, so one
entry point serves every gated bench:

fig2 family (baseline has per-algorithm timing records — BENCH_07):
  * Bor-FAL's find-min share of its own total exceeds the baseline share by
    more than --tolerance (relative, default 15%) plus a small absolute
    slack.  Comparing fractions-of-total rather than raw seconds makes the
    gate robust to CI machines of different speeds; the absolute slack keeps
    sub-millisecond smoke timings from tripping it on noise.
  * A Bor-FAL record claims the packed-key kernel ("simd") but reports zero
    pruned arcs — live-arc pruning silently stopped working.
  * Bor-EL's compact-graph share of its own total exceeds
    --max-el-compact-share (default 60%): deferred compaction broke and the
    pre-PR-7 compact-graph wall (~85% of total at density 10) is back.
  * The champion pipeline's total exceeds the best paper variant's total on
    the same graph by more than --champion-tolerance (default 10%) plus an
    absolute slack: the auto-tuner is picking losing strategies.
  * A forest-identity check record is missing or not identical.

query family (baseline has query_rebuild / query_op records — BENCH_08):
  * pathmax p99 exceeds the baseline p99 by more than --query-tolerance
    (relative, default 50%) plus an absolute slack of a few hundred
    microseconds — smoke-scale per-op times are microseconds, where only a
    complexity-class regression (log n -> n) moves the needle past this.
  * The index rebuild / apply_batch ratio exceeds
    max(--max-rebuild-ratio, baseline * (1 + --query-tolerance)) for any
    batch size: the index no longer rides along with the solve it follows.
  * A query_pathmax identity record is missing or reports mismatches.

serve_scale family (baseline has serve_scale records — BENCH_09):
  * TCP throughput falls below UDS/(1 + --transport-tolerance) at the same
    shard count *within the current run* — same-machine comparison, so CI
    speed cancels out.  The binary framing exists to beat (or at worst
    match) the line protocol; losing by more means framing overhead crept
    in.
  * read p99 exceeds the baseline p99 by more than --serve-tolerance
    (relative, default 75%) plus a millisecond of absolute slack.
  * Sharding efficiency drops below --min-shard-efficiency: rps at S shards
    must reach at least that fraction of rps(1 shard) * expected, where
    expected = min(S, max(1, hw/2)) and hw is the current run's
    hardware_concurrency.  On a single-core CI box expected stays 1 and the
    gate degenerates to "more shards must not wreck throughput", which is
    exactly what is checkable there.
  * Any serve_scale record reports request errors.

scale family (baseline has scale_storage / scale_solve records — BENCH_10):
  * Compressed-CSR structure bytes/edge exceed --max-bytes-per-edge
    (default 5.0) on a degree-10 graph — absolute property of the current
    run; the format promises ~4 B/edge there.
  * Compressed-path solve exceeds uncompressed * (1 + --scale-tolerance)
    (default 25%) plus an absolute slack, compared within the current run so
    CI speed cancels out.
  * Auto-calibrated cutoffs make Champion more than --calibration-tolerance
    (default 5%) slower than the compile-time defaults, within the current
    run: calibration must never regress.
  * A compressed_identity check record is missing or not identical.

Independently of the gate families, the baseline's recorded MachineProfile
is checked against the current host: a baseline recorded on ONE hardware
thread gets a loud warning (its "scaling" numbers are oversubscription
artifacts, as BENCH_05/BENCH_09 were), and any profile field that differs
between baseline host and current host is printed so cross-machine noise in
the relative gates is explainable.

Usage: bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.15]
Exit: 0 clean, 1 regression, 2 bad input.
"""

import argparse
import json
import sys

# Absolute slack, in fraction-of-total points, added on top of the relative
# tolerance: smoke-scale find-min times are ~1ms, where scheduler noise
# easily moves the share by a point or two without any code change.
ABS_SLACK = 0.02

# Absolute slack, in seconds, for the champion-vs-best-variant gate: smoke
# totals are a few ms, where a single scheduler hiccup outweighs any real
# algorithmic difference.
CHAMPION_ABS_SLACK_S = 0.01

# Absolute slack, in microseconds, for the per-op query latency gates.
QUERY_ABS_SLACK_US = 200.0

# Absolute slack, in milliseconds, for the serve_scale read-p99 gate:
# socket round-trips on a loaded CI box jitter by whole milliseconds.
SERVE_ABS_SLACK_MS = 1.0

# Absolute slack, in seconds, for the scale-family solve-ratio gates:
# smoke-scale solves are tens of milliseconds, where a scheduler hiccup
# moves the compressed/uncompressed ratio past any relative tolerance.
SCALE_ABS_SLACK_S = 0.01


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def timing_rows(doc):
    """(alg, density, n) -> record, for the per-algorithm timing records."""
    rows = {}
    for r in doc.get("records", []):
        if "alg" in r and "total" in r and "find_min" in r:
            rows[(r["alg"], r["density"], r["n"])] = r
    return rows


def identity_rows(doc, check):
    return [r for r in doc.get("records", []) if r.get("check") == check]


def rebuild_rows(doc):
    return {r["batch"]: r for r in doc.get("records", [])
            if r.get("tag") == "query_rebuild"}


def op_rows(doc):
    return {r["op"]: r for r in doc.get("records", [])
            if r.get("tag") == "query_op"}


def scale_rows(doc):
    return {(r["transport"], r["shards"]): r for r in doc.get("records", [])
            if r.get("tag") == "serve_scale"}


def storage_rows(doc):
    return {r["m"]: r for r in doc.get("records", [])
            if r.get("tag") == "scale_storage"}


def compressed_solve_rows(doc):
    return {(r["m"], r["threads"]): r for r in doc.get("records", [])
            if r.get("tag") == "scale_solve"}


def tuning_rows(doc):
    return {r["m"]: r for r in doc.get("records", [])
            if r.get("tag") == "scale_tuning"}


def machine_of(doc):
    return doc.get("meta", {}).get("machine", {})


def report_machine(base_doc, cur_doc):
    """Satellite check, independent of the gate families: surface what host
    the committed baseline was recorded on and how this host differs."""
    base_meta = base_doc.get("meta", {})
    bm = machine_of(base_doc)
    cm = machine_of(cur_doc)
    base_hw = bm.get("hardware_threads", base_meta.get("hardware_concurrency"))
    if base_hw == 1:
        print("  WARNING: baseline was recorded on ONE hardware thread — its "
              "multi-thread timings are oversubscription artifacts, and the "
              "relative scaling gates only check that more threads do not "
              "wreck throughput")
    if not bm and not cm:
        return
    if not bm:
        print("  note: baseline has no MachineProfile (recorded before "
              "BENCH_10); current host shown for the record:")
        for k in sorted(cm):
            print(f"    {k}: {cm[k]}")
        return
    diffs = [(k, bm.get(k), cm.get(k))
             for k in sorted(set(bm) | set(cm)) if bm.get(k) != cm.get(k)]
    if diffs:
        print("  machine profile differs from baseline host "
              "(relative gates absorb this, absolute ones may not):")
        for k, b, c in diffs:
            print(f"    {k}: baseline {b} -> current {c}")
    else:
        print("  machine profile matches the baseline host")


def gate_scale(base_doc, cur_doc, args, failures):
    base_sto = storage_rows(base_doc)
    cur_sto = storage_rows(cur_doc)
    for m in sorted(base_sto):
        if m not in cur_sto:
            failures.append(f"scale_storage m={m}: missing from current run")
    # Footprint gate: absolute property of the current run — the compressed
    # format promises ~4 structure bytes/edge at degree 10, gate at 5.
    for m, c in sorted(cur_sto.items()):
        if c.get("density") != 10:
            continue
        bpe = c["structure_bytes_per_edge"]
        verdict = "OK" if bpe <= args.max_bytes_per_edge else "REGRESSED"
        print(f"  storage m={m}: {bpe:.2f} structure B/edge "
              f"(limit {args.max_bytes_per_edge:.1f}), "
              f"decode {c['decode_gbps']:.2f} GB/s {verdict}")
        if bpe > args.max_bytes_per_edge:
            failures.append(
                f"scale_storage m={m}: {bpe:.2f} structure bytes/edge exceeds "
                f"{args.max_bytes_per_edge:.1f} on a degree-10 graph")

    # Streaming gate: compressed vs uncompressed within the current run.
    base_sol = compressed_solve_rows(base_doc)
    cur_sol = compressed_solve_rows(cur_doc)
    for key in sorted(base_sol):
        if key not in cur_sol:
            failures.append(
                f"scale_solve m={key[0]} p={key[1]}: missing from current run")
    for (m, p), c in sorted(cur_sol.items()):
        limit = c["uncompressed_s"] * (1.0 + args.scale_tolerance) + SCALE_ABS_SLACK_S
        verdict = "OK" if c["compressed_s"] <= limit else "REGRESSED"
        print(f"  solve m={m} p={p}: compressed {c['compressed_s']:.4f}s vs "
              f"uncompressed {c['uncompressed_s']:.4f}s "
              f"(limit {limit:.4f}s) {verdict}")
        if c["compressed_s"] > limit:
            failures.append(
                f"scale_solve m={m} p={p}: compressed solve "
                f"{c['compressed_s']:.4f}s exceeds uncompressed "
                f"{c['uncompressed_s']:.4f}s by more than "
                f"{args.scale_tolerance:.0%}")
        if not c.get("identical", False):
            failures.append(
                f"scale_solve m={m} p={p}: compressed and uncompressed "
                "forests differ")

    # Calibration gate: auto-tuned cutoffs must never lose to the defaults.
    for m, c in sorted(tuning_rows(cur_doc).items()):
        limit = c["default_s"] * (1.0 + args.calibration_tolerance) + SCALE_ABS_SLACK_S
        verdict = "OK" if c["calibrated_s"] <= limit else "REGRESSED"
        print(f"  tuning m={m}: calibrated {c['calibrated_s']:.4f}s vs "
              f"default {c['default_s']:.4f}s (limit {limit:.4f}s) {verdict}")
        if c["calibrated_s"] > limit:
            failures.append(
                f"scale_tuning m={m}: calibrated cutoffs make Champion "
                f"{c['calibrated_s']:.4f}s vs {c['default_s']:.4f}s default "
                f"(> {args.calibration_tolerance:.0%} regression)")

    idents = identity_rows(cur_doc, "compressed_identity")
    if not idents:
        failures.append("no compressed_identity check records in current run")
    for r in idents:
        if not r.get("identical", False):
            failures.append(
                f"compressed identity failed at m={r.get('m')}")
    if idents and all(r.get("identical", False) for r in idents):
        print(f"  compressed identity: OK ({len(idents)} sizes)")


def gate_serve_scale(base_doc, cur_doc, args, failures):
    base = scale_rows(base_doc)
    cur = scale_rows(cur_doc)

    for key in sorted(base):
        if key not in cur:
            failures.append(
                f"serve_scale {key[0]} shards={key[1]}: missing from current run")
    for (transport, shards), c in sorted(cur.items()):
        if c.get("errors", 0):
            failures.append(
                f"serve_scale {transport} shards={shards}: "
                f"{c['errors']} request errors")

    # Transport gate: tcp vs uds at the same shard count, within this run.
    shard_counts = sorted({s for (t, s) in cur if t == "tcp"})
    for s in shard_counts:
        tcp = cur.get(("tcp", s))
        uds = cur.get(("uds", s))
        if tcp is None or uds is None:
            continue
        floor = uds["rps"] / (1.0 + args.transport_tolerance)
        verdict = "OK" if tcp["rps"] >= floor else "REGRESSED"
        print(f"  transport shards={s}: tcp {tcp['rps']:.0f} rps vs uds "
              f"{uds['rps']:.0f} rps (floor {floor:.0f}) {verdict}")
        if tcp["rps"] < floor:
            failures.append(
                f"serve_scale shards={s}: tcp {tcp['rps']:.0f} rps trails uds "
                f"{uds['rps']:.0f} rps by more than {args.transport_tolerance:.0%}")

    # Latency gate: read p99 vs the committed baseline, per (transport, shards).
    for key, b in sorted(base.items()):
        c = cur.get(key)
        if c is None:
            continue
        limit = b["read_p99_ms"] * (1.0 + args.serve_tolerance) + SERVE_ABS_SLACK_MS
        verdict = "OK" if c["read_p99_ms"] <= limit else "REGRESSED"
        print(f"  {key[0]} shards={key[1]}: read p99 {b['read_p99_ms']:.3f}ms -> "
              f"{c['read_p99_ms']:.3f}ms (limit {limit:.3f}ms) {verdict}")
        if c["read_p99_ms"] > limit:
            failures.append(
                f"serve_scale {key[0]} shards={key[1]}: read p99 "
                f"{c['read_p99_ms']:.3f}ms exceeds baseline "
                f"{b['read_p99_ms']:.3f}ms by more than {args.serve_tolerance:.0%}")

    # Scaling gate: hardware-aware — a laptop-class CI runner cannot show
    # 4-shard speedups, so expectations are capped by the cores the current
    # run actually had.
    hw = cur_doc.get("meta", {}).get("hardware_concurrency", 1) or 1
    for transport in sorted({t for (t, s) in cur}):
        base_rps = cur.get((transport, 1), {}).get("rps")
        if not base_rps:
            continue
        for (t, s), c in sorted(cur.items()):
            if t != transport or s <= 1:
                continue
            expected = min(s, max(1, hw // 2))
            eff = c["rps"] / (base_rps * expected)
            verdict = "OK" if eff >= args.min_shard_efficiency else "REGRESSED"
            print(f"  {transport} shards={s}: scaling efficiency {eff:.2f} "
                  f"(expected x{expected} on hw={hw}, "
                  f"floor {args.min_shard_efficiency:.2f}) {verdict}")
            if eff < args.min_shard_efficiency:
                failures.append(
                    f"serve_scale {transport} shards={s}: scaling efficiency "
                    f"{eff:.2f} below {args.min_shard_efficiency:.2f} "
                    f"(rps {c['rps']:.0f} vs {base_rps:.0f} at 1 shard, "
                    f"hw={hw})")


def gate_fig2(base_doc, cur_doc, args, failures):
    base = timing_rows(base_doc)
    cur = timing_rows(cur_doc)

    for key, b in sorted(base.items()):
        alg, density, n = key
        c = cur.get(key)
        if c is None:
            failures.append(f"{alg} density={density} n={n}: missing from current run")
            continue
        if alg != "Bor-FAL":
            continue
        b_share = b["find_min"] / b["total"] if b["total"] > 0 else 0.0
        c_share = c["find_min"] / c["total"] if c["total"] > 0 else 0.0
        limit = b_share * (1.0 + args.tolerance) + ABS_SLACK
        verdict = "OK" if c_share <= limit else "REGRESSED"
        print(f"  Bor-FAL density={density} n={n}: find-min share "
              f"{b_share:.3f} -> {c_share:.3f} (limit {limit:.3f}) {verdict}")
        if c_share > limit:
            failures.append(
                f"Bor-FAL density={density} n={n}: find-min share {c_share:.3f} "
                f"exceeds baseline {b_share:.3f} by more than {args.tolerance:.0%}")
        if c.get("find_min_mode") == "simd" and c.get("find_min_pruned_arcs", 0) == 0:
            failures.append(
                f"Bor-FAL density={density} n={n}: simd mode but 0 pruned arcs "
                "(live-arc pruning is dead)")

    # Compact-graph gates run on the current document alone: they are
    # absolute properties of this run, not relative to the baseline.
    paper_variants = ("Bor-EL", "Bor-AL", "Bor-ALM", "Bor-FAL")
    by_graph = {}
    for (alg, density, n), c in cur.items():
        by_graph.setdefault((density, n), {})[alg] = c
    for (density, n), algs in sorted(by_graph.items()):
        el = algs.get("Bor-EL")
        if el is not None and el["total"] > 0:
            share = el["compact"] / el["total"]
            verdict = "OK" if share <= args.max_el_compact_share else "REGRESSED"
            print(f"  Bor-EL density={density} n={n}: compact share "
                  f"{share:.3f} (limit {args.max_el_compact_share:.2f}) {verdict}")
            if share > args.max_el_compact_share:
                failures.append(
                    f"Bor-EL density={density} n={n}: compact share {share:.3f} "
                    f"exceeds {args.max_el_compact_share:.0%} — the "
                    "compact-graph wall is back")
        champ = algs.get("Champion")
        best_variant = min((algs[a]["total"] for a in paper_variants if a in algs),
                           default=None)
        if champ is not None and best_variant is not None:
            limit = best_variant * (1.0 + args.champion_tolerance) + CHAMPION_ABS_SLACK_S
            verdict = "OK" if champ["total"] <= limit else "REGRESSED"
            print(f"  Champion density={density} n={n}: total {champ['total']:.4f}s "
                  f"vs best variant {best_variant:.4f}s (limit {limit:.4f}s) {verdict}")
            if champ["total"] > limit:
                failures.append(
                    f"Champion density={density} n={n}: total {champ['total']:.4f}s "
                    f"loses to the best paper variant ({best_variant:.4f}s) by "
                    f"more than {args.champion_tolerance:.0%}")

    idents = identity_rows(cur_doc, "forest_identity")
    if not idents:
        failures.append("no forest_identity check records in current run")
    for r in idents:
        if not r.get("forests_identical", False):
            failures.append(f"forest identity failed at density {r.get('density')}")
    if idents and all(r.get("forests_identical", False) for r in idents):
        print(f"  forest identity: OK ({len(idents)} densities)")


def gate_query(base_doc, cur_doc, args, failures):
    base_ops = op_rows(base_doc)
    cur_ops = op_rows(cur_doc)
    for op in ("pathmax", "conn"):
        b = base_ops.get(op)
        if b is None:
            continue
        c = cur_ops.get(op)
        if c is None:
            failures.append(f"query op {op}: missing from current run")
            continue
        limit = b["p99_us"] * (1.0 + args.query_tolerance) + QUERY_ABS_SLACK_US
        verdict = "OK" if c["p99_us"] <= limit else "REGRESSED"
        print(f"  {op}: p99 {b['p99_us']:.2f}us -> {c['p99_us']:.2f}us "
              f"(limit {limit:.2f}us) {verdict}")
        if c["p99_us"] > limit:
            failures.append(
                f"query op {op}: p99 {c['p99_us']:.2f}us exceeds baseline "
                f"{b['p99_us']:.2f}us by more than {args.query_tolerance:.0%}")

    base_reb = rebuild_rows(base_doc)
    cur_reb = rebuild_rows(cur_doc)
    for batch, b in sorted(base_reb.items()):
        c = cur_reb.get(batch)
        if c is None:
            failures.append(f"query rebuild batch={batch}: missing from current run")
            continue
        limit = max(args.max_rebuild_ratio,
                    b["ratio"] * (1.0 + args.query_tolerance))
        verdict = "OK" if c["ratio"] <= limit else "REGRESSED"
        print(f"  rebuild batch={batch}: ratio {b['ratio']:.2f} -> "
              f"{c['ratio']:.2f} (limit {limit:.2f}) {verdict}")
        if c["ratio"] > limit:
            failures.append(
                f"query rebuild batch={batch}: rebuild/apply ratio "
                f"{c['ratio']:.2f} exceeds {limit:.2f} — the index no longer "
                "rides along with the solve")

    idents = identity_rows(cur_doc, "query_pathmax")
    if not idents:
        failures.append("no query_pathmax identity records in current run")
    for r in idents:
        if r.get("mismatches", 1) != 0:
            failures.append(
                f"query pathmax identity: {r['mismatches']} mismatches over "
                f"{r.get('pairs')} pairs")
    if idents and all(r.get("mismatches", 1) == 0 for r in idents):
        print(f"  query identity: OK ({sum(r.get('pairs', 0) for r in idents)} pairs)")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative growth of Bor-FAL's find-min share")
    ap.add_argument("--max-el-compact-share", type=float, default=0.60,
                    help="hard cap on Bor-EL's compact share of its total")
    ap.add_argument("--champion-tolerance", type=float, default=0.10,
                    help="allowed champion slowdown vs the best paper variant")
    ap.add_argument("--query-tolerance", type=float, default=0.50,
                    help="allowed relative growth of query p99 / rebuild ratio")
    ap.add_argument("--max-rebuild-ratio", type=float, default=1.0,
                    help="floor of the rebuild/apply ratio limit")
    ap.add_argument("--transport-tolerance", type=float, default=0.15,
                    help="how far tcp rps may trail uds rps in the same run")
    ap.add_argument("--serve-tolerance", type=float, default=0.75,
                    help="allowed relative growth of serve read p99")
    ap.add_argument("--min-shard-efficiency", type=float, default=0.70,
                    help="floor on rps(S) / (rps(1) * expected speedup)")
    ap.add_argument("--max-bytes-per-edge", type=float, default=5.0,
                    help="cap on compressed-CSR structure bytes/edge at d=10")
    ap.add_argument("--scale-tolerance", type=float, default=0.25,
                    help="how far the compressed solve may trail uncompressed")
    ap.add_argument("--calibration-tolerance", type=float, default=0.05,
                    help="allowed Champion slowdown under calibrated cutoffs")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)
    failures = []

    report_machine(base_doc, cur_doc)

    ran = []
    if timing_rows(base_doc):
        gate_fig2(base_doc, cur_doc, args, failures)
        ran.append("fig2")
    if rebuild_rows(base_doc) or op_rows(base_doc):
        gate_query(base_doc, cur_doc, args, failures)
        ran.append("query")
    if scale_rows(base_doc):
        gate_serve_scale(base_doc, cur_doc, args, failures)
        ran.append("serve_scale")
    if storage_rows(base_doc) or compressed_solve_rows(base_doc):
        gate_scale(base_doc, cur_doc, args, failures)
        ran.append("scale")
    if not ran:
        print("bench_compare: baseline contains no gated record family",
              file=sys.stderr)
        return 2

    if failures:
        print("\nbench_compare: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print(f"bench_compare: OK ({', '.join(ran)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
