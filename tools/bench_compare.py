#!/usr/bin/env python3
"""Regression gate for the fig-2 step-breakdown bench.

Compares a freshly produced fig2_breakdown JSON against a committed
baseline (bench/baselines/BENCH_05_smoke.json) and fails when the find-min
acceleration regresses:

  * Bor-FAL's find-min share of its own total exceeds the baseline share by
    more than --tolerance (relative, default 15%) plus a small absolute
    slack.  Comparing fractions-of-total rather than raw seconds makes the
    gate robust to CI machines of different speeds; the absolute slack keeps
    sub-millisecond smoke timings from tripping it on noise.
  * A Bor-FAL record claims the packed-key kernel ("simd") but reports zero
    pruned arcs — live-arc pruning silently stopped working.
  * A forest-identity check record is missing or not identical.

Usage: bench_compare.py BASELINE.json CURRENT.json [--tolerance 0.15]
Exit: 0 clean, 1 regression, 2 bad input.
"""

import argparse
import json
import sys

# Absolute slack, in fraction-of-total points, added on top of the relative
# tolerance: smoke-scale find-min times are ~1ms, where scheduler noise
# easily moves the share by a point or two without any code change.
ABS_SLACK = 0.02


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_compare: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def timing_rows(doc):
    """(alg, density, n) -> record, for the per-algorithm timing records."""
    rows = {}
    for r in doc.get("records", []):
        if "alg" in r and "total" in r and "find_min" in r:
            rows[(r["alg"], r["density"], r["n"])] = r
    return rows


def identity_rows(doc):
    return [r for r in doc.get("records", []) if r.get("check") == "forest_identity"]


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--tolerance", type=float, default=0.15,
                    help="allowed relative growth of Bor-FAL's find-min share")
    args = ap.parse_args()

    base = timing_rows(load(args.baseline))
    cur_doc = load(args.current)
    cur = timing_rows(cur_doc)
    failures = []

    for key, b in sorted(base.items()):
        alg, density, n = key
        c = cur.get(key)
        if c is None:
            failures.append(f"{alg} density={density} n={n}: missing from current run")
            continue
        if alg != "Bor-FAL":
            continue
        b_share = b["find_min"] / b["total"] if b["total"] > 0 else 0.0
        c_share = c["find_min"] / c["total"] if c["total"] > 0 else 0.0
        limit = b_share * (1.0 + args.tolerance) + ABS_SLACK
        verdict = "OK" if c_share <= limit else "REGRESSED"
        print(f"  Bor-FAL density={density} n={n}: find-min share "
              f"{b_share:.3f} -> {c_share:.3f} (limit {limit:.3f}) {verdict}")
        if c_share > limit:
            failures.append(
                f"Bor-FAL density={density} n={n}: find-min share {c_share:.3f} "
                f"exceeds baseline {b_share:.3f} by more than {args.tolerance:.0%}")
        if c.get("find_min_mode") == "simd" and c.get("find_min_pruned_arcs", 0) == 0:
            failures.append(
                f"Bor-FAL density={density} n={n}: simd mode but 0 pruned arcs "
                "(live-arc pruning is dead)")

    idents = identity_rows(cur_doc)
    if not idents:
        failures.append("no forest_identity check records in current run")
    for r in idents:
        if not r.get("forests_identical", False):
            failures.append(f"forest identity failed at density {r.get('density')}")
    if idents and all(r.get("forests_identical", False) for r in idents):
        print(f"  forest identity: OK ({len(idents)} densities)")

    if failures:
        print("\nbench_compare: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("bench_compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
