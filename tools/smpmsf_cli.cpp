// smpmsf — command-line front end for the library.
//
//   smpmsf gen --type T --n N [--m M] [--k K] [--seed S] -o FILE
//   smpmsf info FILE
//   smpmsf convert IN OUT           (format chosen by extension: .smpg = binary)
//   smpmsf solve [--alg A] [--threads P] [--seed S] [--timeout SECS]
//                [--mem-cap BYTES] [--no-fallback] [--validate] [--steps]
//                [--stats-json FILE] [--find-min auto|scan|simd]
//                [--find-min-local-best-threads N]
//                [--find-min-local-best-cutoff N] [--find-min-prune-block N]
//                [--compact-sort auto|radix|sample|hash]
//                [--deferred-compact auto|on|off]
//                [--compact-live-threshold X] [--compact-chunk N]
//                [--mode static|dynamic] [--batch-size N] [--update-trace FILE]
//                FILE
//   smpmsf cc [--threads P] FILE
//
// Graph types: random (needs --m), mesh2d, mesh2d60, mesh3d40,
// geometric (--k), str0..str3, rmat (needs --m).
// Algorithms: champion (default) bor-el bor-al bor-alm bor-fal mst-bc
//             filter-kruskal sample-filter prim kruskal boruvka.
//
// --mode dynamic maintains the forest through a batch-dynamic update trace
// (--update-trace, applied in batches of --batch-size ops):
//
//   c <comment>
//   i <u> <v> <weight>    insert an edge (vertices 1-based, like DIMACS)
//   d <u> <v>             delete the canonical (lightest, then oldest) live
//                         edge with these endpoints
//
// Flags accept both "--key value" and "--key=value".  Unknown --alg /
// --mode / --find-min / trace operations are invalid input (exit 3), with
// the accepted values listed.
//
// Exit codes: 0 success, 1 runtime/validation failure, 2 usage, then one per
// smp::ErrorCode class — 3 invalid input, 4 cancelled, 5 deadline exceeded,
// 6 out of memory.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_set>

#include "core/connected_components.hpp"
#include "core/error.hpp"
#include "core/filter_kruskal.hpp"
#include "core/find_min.hpp"
#include "core/sample_filter.hpp"
#include "core/verify_msf.hpp"
#include "core/msf.hpp"
#include "dynamic/dynamic_msf.hpp"
#include "core/compressed_solve.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "graph/validate.hpp"
#include "pprim/build_info.hpp"
#include "pprim/machine.hpp"
#include "pprim/simd.hpp"
#include "pprim/timer.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  smpmsf gen --type T --n N [--m M] [--k K] [--seed S] -o FILE\n"
               "  smpmsf info FILE\n"
               "  smpmsf convert IN OUT\n"
               "  smpmsf solve [--alg A] [--threads P] [--seed S]"
               " [--timeout SECS] [--mem-cap BYTES] [--no-fallback]"
               " [--validate] [--steps] [--stats-json FILE]\n"
               "               [--find-min auto|scan|simd]"
               " [--find-min-local-best-threads N]"
               " [--find-min-local-best-cutoff N] [--find-min-prune-block N]\n"
               "               [--compact-sort auto|radix|sample|hash]"
               " [--deferred-compact auto|on|off]"
               " [--compact-live-threshold X] [--compact-chunk N]\n"
               "               [--mode static|dynamic] [--batch-size N]"
               " [--update-trace FILE]\n"
               "               [--graph-format auto|edges|compressed]"
               " [--auto-tune] FILE\n"
               "  smpmsf cc [--threads P] FILE\n"
               "formats by extension: .smpg binary, .smpz compressed csr,"
               " else DIMACS text\n"
               "types: random mesh2d mesh2d60 mesh3d40 geometric str0-str3 rmat\n"
               "algs:  champion bor-el bor-al bor-alm bor-fal mst-bc bor-uf par-kruskal filter-kruskal sample-filter"
               " prim kruskal boruvka\n");
  std::exit(2);
}

/// One table drives parsing, error messages and the usage line: an enum
/// value that is not in the table fails as invalid input (exit 3) with the
/// accepted spellings listed — not as a generic usage error.
constexpr struct {
  const char* name;
  core::Algorithm alg;
} kAlgorithms[] = {
    {"champion", core::Algorithm::kChampion},
    {"bor-el", core::Algorithm::kBorEL},
    {"bor-al", core::Algorithm::kBorAL},
    {"bor-alm", core::Algorithm::kBorALM},
    {"bor-fal", core::Algorithm::kBorFAL},
    {"mst-bc", core::Algorithm::kMstBC},
    {"bor-uf", core::Algorithm::kBorUF},
    {"par-kruskal", core::Algorithm::kParKruskal},
    {"filter-kruskal", core::Algorithm::kFilterKruskal},
    {"sample-filter", core::Algorithm::kSampleFilter},
    {"prim", core::Algorithm::kSeqPrim},
    {"kruskal", core::Algorithm::kSeqKruskal},
    {"boruvka", core::Algorithm::kSeqBoruvka},
};

core::Algorithm parse_algorithm(const std::string& s) {
  std::string valid;
  for (const auto& row : kAlgorithms) {
    if (s == row.name) return row.alg;
    if (!valid.empty()) valid += ' ';
    valid += row.name;
  }
  throw smp::Error(smp::ErrorCode::kInvalidInput,
                   "unknown algorithm '" + s + "' (valid: " + valid + ")");
}

enum class SolveMode { kStatic, kDynamic };

SolveMode parse_mode(const std::string& s) {
  if (s == "static") return SolveMode::kStatic;
  if (s == "dynamic") return SolveMode::kDynamic;
  throw smp::Error(smp::ErrorCode::kInvalidInput,
                   "unknown mode '" + s + "' (valid: static dynamic)");
}

core::FindMinMode parse_find_min(const std::string& s) {
  if (s == "auto") return core::FindMinMode::kAuto;
  if (s == "scan") return core::FindMinMode::kScan;
  if (s == "simd") return core::FindMinMode::kSimd;
  throw smp::Error(smp::ErrorCode::kInvalidInput,
                   "unknown find-min mode '" + s + "' (valid: auto scan simd)");
}

core::CompactSortMode parse_compact_sort(const std::string& s) {
  if (s == "auto") return core::CompactSortMode::kAuto;
  if (s == "radix") return core::CompactSortMode::kRadix;
  if (s == "sample") return core::CompactSortMode::kSample;
  if (s == "hash") return core::CompactSortMode::kHash;
  throw smp::Error(
      smp::ErrorCode::kInvalidInput,
      "unknown compact-sort mode '" + s + "' (valid: auto radix sample hash)");
}

core::DeferredCompactMode parse_deferred_compact(const std::string& s) {
  if (s == "auto") return core::DeferredCompactMode::kAuto;
  if (s == "on") return core::DeferredCompactMode::kOn;
  if (s == "off") return core::DeferredCompactMode::kOff;
  throw smp::Error(smp::ErrorCode::kInvalidInput,
                   "unknown deferred-compact mode '" + s +
                       "' (valid: auto on off)");
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

EdgeList load(const std::string& path) {
  if (ends_with(path, ".smpz")) {
    // Eager decode: fine for info/convert; solve keeps the compressed form
    // (see cmd_solve) so big graphs never materialize an edge list.
    return CompressedCsr::open_file(path).decode_edge_list();
  }
  return ends_with(path, ".smpg") ? read_binary_file(path) : read_dimacs_file(path);
}

void store(const std::string& path, const EdgeList& g) {
  if (ends_with(path, ".smpz")) {
    CompressedCsr::build(g).write_file(path);
  } else if (ends_with(path, ".smpg")) {
    write_binary_file(path, g);
  } else {
    write_dimacs_file(path, g);
  }
}

/// Tiny flag parser: collects --key value pairs and positionals.
struct Flags {
  std::vector<std::pair<std::string, std::string>> kv;
  std::vector<std::string> positional;
  std::vector<std::string> switches;

  [[nodiscard]] std::optional<std::string> get(const char* key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  [[nodiscard]] bool has(const char* name) const {
    for (const auto& s : switches) {
      if (s == name) return true;
    }
    return false;
  }
  [[nodiscard]] std::uint64_t num(const char* key, std::uint64_t fallback) const {
    const auto v = get(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }
  [[nodiscard]] std::optional<double> real(const char* key) const {
    const auto v = get(key);
    if (!v) return std::nullopt;
    return std::strtod(v->c_str(), nullptr);
  }
};

Flags parse(int argc, char** argv, int from) {
  Flags f;
  static const char* kSwitches[] = {"--validate", "--steps", "--no-fallback",
                                    "--auto-tune"};
  for (int i = from; i < argc; ++i) {
    const std::string a = argv[i];
    bool is_switch = false;
    for (const char* s : kSwitches) {
      if (a == s) {
        f.switches.push_back(a);
        is_switch = true;
      }
    }
    if (is_switch) continue;
    if (a.rfind("--", 0) == 0 || a == "-o") {
      // "--key=value" and "--key value" are equivalent.
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) {
        f.kv.emplace_back(a.substr(0, eq), a.substr(eq + 1));
        continue;
      }
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      f.kv.emplace_back(a == "-o" ? "--out" : a, argv[++i]);
    } else {
      f.positional.push_back(a);
    }
  }
  return f;
}

int cmd_gen(const Flags& f) {
  const auto type = f.get("--type");
  const auto out = f.get("--out");
  if (!type || !out) usage("gen needs --type and -o");
  const auto n = static_cast<VertexId>(f.num("--n", 0));
  const auto m = static_cast<EdgeId>(f.num("--m", 0));
  const auto k = static_cast<int>(f.num("--k", 6));
  const std::uint64_t seed = f.num("--seed", 1);
  if (n == 0) usage("gen needs --n > 0");

  EdgeList g;
  const auto side = static_cast<VertexId>(std::lround(std::sqrt(double(n))));
  const auto side3 = static_cast<VertexId>(std::lround(std::cbrt(double(n))));
  if (*type == "random") {
    if (m == 0) usage("random needs --m");
    g = random_graph(n, m, seed);
  } else if (*type == "mesh2d") {
    g = mesh2d(side, side, seed);
  } else if (*type == "mesh2d60") {
    g = mesh2d_p(side, side, 0.6, seed);
  } else if (*type == "mesh3d40") {
    g = mesh3d_p(side3, side3, side3, 0.4, seed);
  } else if (*type == "geometric") {
    g = geometric_knn(n, k, seed);
  } else if (type->rfind("str", 0) == 0 && type->size() == 4) {
    g = structured_graph((*type)[3] - '0', n, seed);
  } else if (*type == "rmat") {
    if (m == 0) usage("rmat needs --m");
    int scale = 0;
    while ((VertexId{1} << scale) < n) ++scale;
    g = rmat_graph(scale, m, seed);
  } else {
    usage(("unknown graph type " + *type).c_str());
  }
  store(*out, g);
  std::printf("wrote %s: vertices: %u edges: %llu\n", out->c_str(), g.num_vertices,
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_info(const Flags& f) {
  if (f.positional.size() != 1) usage("info needs exactly one FILE");
  if (ends_with(f.positional[0], ".smpz")) {
    const CompressedCsr c = CompressedCsr::open_file(f.positional[0]);
    std::printf("format: compressed csr (.smpz)\n");
    std::printf("structure: %zu bytes (%.2f B/edge), adjacency %zu bytes\n",
                c.structure_bytes(),
                c.num_edges() > 0 ? static_cast<double>(c.structure_bytes()) /
                                        static_cast<double>(c.num_edges())
                                  : 0.0,
                c.adjacency_bytes());
  }
  const EdgeList g = load(f.positional[0]);
  const auto ds = degree_stats(g);
  std::printf("vertices: %u\nedges: %llu\ncomponents: %zu\n", g.num_vertices,
              static_cast<unsigned long long>(g.num_edges()), num_components(g));
  std::printf("degree min/mean/max: %zu / %.2f / %zu\n", ds.min_degree,
              ds.mean_degree, ds.max_degree);
  std::printf("simple: %s\n", is_simple(g) ? "yes" : "no");
  return 0;
}

int cmd_convert(const Flags& f) {
  if (f.positional.size() != 2) usage("convert needs IN and OUT");
  store(f.positional[1], load(f.positional[0]));
  std::printf("converted %s -> %s\n", f.positional[0].c_str(), f.positional[1].c_str());
  return 0;
}

/// `solve --mode dynamic`: build a DynamicMsf on the loaded graph, then
/// replay the update trace in batches of --batch-size operations.
int solve_dynamic(const Flags& f, const EdgeList& g,
                  const core::MsfOptions& opts, const std::string& alg) {
  const auto trace_path = f.get("--update-trace");
  if (!trace_path) usage("--mode dynamic needs --update-trace FILE");
  const auto batch_size = static_cast<std::size_t>(f.num("--batch-size", 1024));
  if (batch_size == 0) usage("--batch-size must be >= 1");

  std::ifstream is(*trace_path);
  if (!is) {
    throw smp::Error(smp::ErrorCode::kInvalidInput,
                     "cannot open update trace " + *trace_path);
  }

  smp::dynamic::DynamicMsfOptions dopts;
  dopts.msf = opts;
  smp::dynamic::DynamicMsf d(g, dopts);

  const auto pair_key = [](VertexId u, VertexId v) {
    if (u > v) std::swap(u, v);
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };

  std::size_t ops = 0, batches = 0, scratch = 0, added = 0, removed = 0;
  std::vector<WEdge> ins;
  std::vector<EdgeId> del;
  // Pairs inserted and ids deleted by the *pending* batch: a batch's
  // deletions always name pre-batch edges, so a trace op that would observe
  // its own batch forces a flush first (keeps replay order-exact while
  // still batching the common case).
  std::unordered_set<std::uint64_t> pending_pairs;
  std::unordered_set<EdgeId> pending_del;

  WallTimer t;
  const auto flush = [&] {
    if (ins.empty() && del.empty()) return;
    const auto delta = d.apply_batch(ins, del);
    ++batches;
    ops += ins.size() + del.size();
    scratch += delta.recomputed_from_scratch ? 1 : 0;
    added += delta.forest_added.size();
    removed += delta.forest_removed.size();
    ins.clear();
    del.clear();
    pending_pairs.clear();
    pending_del.clear();
  };

  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == 'c') continue;
    std::istringstream ls(line);
    char tag = 0;
    ls >> tag;
    VertexId u = 0, v = 0;
    if (tag == 'i') {
      Weight w = 0;
      ls >> u >> v >> w;
      if (!ls || u == 0 || v == 0 || u > g.num_vertices ||
          v > g.num_vertices || u == v || !std::isfinite(w)) {
        throw smp::Error(smp::ErrorCode::kInvalidInput,
                         "bad trace insert at line " + std::to_string(lineno));
      }
      ins.push_back(WEdge{u - 1, v - 1, w});
      pending_pairs.insert(pair_key(u - 1, v - 1));
    } else if (tag == 'd') {
      ls >> u >> v;
      if (!ls || u == 0 || v == 0 || u > g.num_vertices || v > g.num_vertices) {
        throw smp::Error(smp::ErrorCode::kInvalidInput,
                         "bad trace delete at line " + std::to_string(lineno));
      }
      if (pending_pairs.count(pair_key(u - 1, v - 1)) != 0) flush();
      auto id = d.store().find_live(u - 1, v - 1);
      if (id && pending_del.count(*id) != 0) {
        flush();  // applies the pending deletion of this very edge
        id = d.store().find_live(u - 1, v - 1);
      }
      if (!id) {
        throw smp::Error(smp::ErrorCode::kInvalidInput,
                         "trace deletes edge (" + std::to_string(u) + "," +
                             std::to_string(v) + ") that is not live, line " +
                             std::to_string(lineno));
      }
      del.push_back(*id);
      pending_del.insert(*id);
    } else {
      throw smp::Error(smp::ErrorCode::kInvalidInput,
                       std::string("unknown trace op '") + tag + "' at line " +
                           std::to_string(lineno) + " (valid: c i d)");
    }
    if (ins.size() + del.size() >= batch_size) flush();
  }
  flush();
  const double secs = t.elapsed_s();

  std::printf(
      "%s (p=%d) dynamic: %zu ops in %zu batch(es) of <= %zu, %.3fs (%.0f ops/s)\n",
      alg.c_str(), opts.threads, ops, batches, batch_size, secs,
      secs > 0 ? static_cast<double>(ops) / secs : 0.0);
  std::printf(
      "forest: %zu edges, weight %.6f, %zu tree(s); edges entered %zu, left "
      "%zu; scratch recomputes %zu\n",
      d.forest_edge_ids().size(), d.total_weight(), d.num_trees(), added,
      removed, scratch);

  if (f.has("--validate")) {
    // The determinism contract: the maintained forest must be bit-identical
    // (edge ids and weight) to a from-scratch solve on the final graph.
    std::vector<EdgeId> ids;
    const EdgeList live = d.store().live_graph(&ids);
    auto ref = core::minimum_spanning_forest_of_candidates(live, ids, opts);
    std::sort(ref.edge_ids.begin(), ref.edge_ids.end());
    Weight ref_weight = 0;
    for (const EdgeId id : ref.edge_ids) ref_weight += d.store().edge(id).w;
    if (ref.edge_ids != d.forest_edge_ids() || ref_weight != d.total_weight()) {
      std::printf("validation: dynamic forest differs from from-scratch recompute\n");
      return 1;
    }
    std::printf("validation: OK (bit-identical to from-scratch recompute)\n");
  }
  return 0;
}

/// `solve --stats-json FILE`: one JSON object with the build info (compiler,
/// build type, hardware threads), the run parameters, the solver's
/// PhaseStats / StepTimes instrumentation and the result facts — the
/// machine-readable sibling of the human solve output.
void write_stats_json(const std::string& path, const std::string& alg,
                      const core::MsfOptions& opts, VertexId num_vertices,
                      EdgeId num_edges, const MsfResult& r, double secs,
                      const core::StepTimes& steps,
                      const core::PhaseStats& pstats) {
  std::ofstream os(path);
  if (!os) {
    throw smp::Error(smp::ErrorCode::kInvalidInput, "cannot write " + path);
  }
  char buf[512];
  os << "{\"build\": " << smp::build_info_json();
  std::snprintf(buf, sizeof buf,
                ", \"algorithm\": \"%s\", \"threads\": %d, \"seed\": %llu",
                alg.c_str(), opts.threads,
                static_cast<unsigned long long>(opts.seed));
  os << buf;
  // Oversubscription visibility: requested vs. hardware threads, so a run on
  // a small CI box is never mistaken for a true scaling measurement.
  const unsigned hw = std::thread::hardware_concurrency();
  std::snprintf(buf, sizeof buf,
                ", \"threads_requested\": %d, \"threads_available\": %u"
                ", \"oversubscribed\": %s",
                opts.threads, hw,
                (hw != 0 && opts.threads > static_cast<int>(hw)) ? "true"
                                                                 : "false");
  os << buf;
  // Find-min kernel facts: the mode as requested and as resolved (a forced
  // "simd" silently degrades to "scan" when the graph is not packable), the
  // SIMD ISA the dispatcher picked, and how many arcs live-arc pruning
  // retired (0 in scan mode or for algorithms without pruning).
  const core::FindMinMode resolved =
      core::resolve_find_min_mode(opts.find_min, num_edges);
  std::snprintf(buf, sizeof buf,
                ", \"find_min\": {\"mode\": \"%s\", \"resolved\": \"%s\""
                ", \"kernel\": \"%s\", \"pruned_arcs\": %llu}",
                std::string(core::to_string(opts.find_min)).c_str(),
                std::string(core::to_string(resolved)).c_str(), simd_isa_name(),
                static_cast<unsigned long long>(steps.pruned_arcs));
  os << buf;
  std::snprintf(buf, sizeof buf,
                ", \"graph\": {\"vertices\": %u, \"edges\": %llu}",
                num_vertices, static_cast<unsigned long long>(num_edges));
  os << buf;
  // Host facts: which machine produced these numbers (see pprim/machine.hpp;
  // bench JSONs carry the same block, and bench_compare.py diffs it).
  os << ", \"machine\": " << smp::machine_profile_json();
  std::snprintf(buf, sizeof buf, ", \"seconds\": %.6f", secs);
  os << buf;
  std::snprintf(buf, sizeof buf,
                ", \"phase_stats\": {\"iterations\": %llu, \"regions\": %llu"
                ", \"regions_per_iteration\": %.3f}",
                static_cast<unsigned long long>(pstats.iterations),
                static_cast<unsigned long long>(pstats.regions),
                pstats.regions_per_iteration());
  os << buf;
  // Compact-graph strategy mix (deferred-compaction engines only; all-zero
  // for eager algorithms) plus the radix hash-map's probe statistics.
  std::snprintf(buf, sizeof buf,
                ", \"compact\": {\"deferred_iterations\": %llu"
                ", \"hash_compacts\": %llu, \"sort_compacts\": %llu"
                ", \"merge_rebuilds\": %llu",
                static_cast<unsigned long long>(pstats.deferred_iterations),
                static_cast<unsigned long long>(pstats.hash_compacts),
                static_cast<unsigned long long>(pstats.sort_compacts),
                static_cast<unsigned long long>(pstats.merge_rebuilds));
  os << buf;
  std::snprintf(
      buf, sizeof buf,
      ", \"hash\": {\"keys\": %llu, \"probe_steps\": %llu"
      ", \"max_probe\": %llu, \"probe_steps_per_key\": %.3f}}",
      static_cast<unsigned long long>(pstats.hash_keys),
      static_cast<unsigned long long>(pstats.hash_probe_steps),
      static_cast<unsigned long long>(pstats.hash_max_probe),
      pstats.hash_keys != 0 ? static_cast<double>(pstats.hash_probe_steps) /
                                  static_cast<double>(pstats.hash_keys)
                            : 0.0);
  os << buf;
  std::snprintf(buf, sizeof buf,
                ", \"step_times\": {\"find_min\": %.6f, \"connect\": %.6f"
                ", \"compact\": %.6f, \"other\": %.6f, \"total\": %.6f}",
                steps.find_min, steps.connect, steps.compact, steps.other,
                steps.total());
  os << buf;
  std::snprintf(buf, sizeof buf,
                ", \"result\": {\"forest_edges\": %zu, \"weight\": %.17g"
                ", \"trees\": %zu, \"degraded_to_sequential\": %s}}",
                r.edges.size(), r.total_weight, r.num_trees,
                r.degraded_to_sequential ? "true" : "false");
  os << buf << "\n";
}

int cmd_solve(const Flags& f) {
  if (f.positional.size() != 1) usage("solve needs exactly one FILE");
  const std::string& file = f.positional[0];
  // --graph-format: how the solver sees the graph.  "compressed" keeps (or
  // builds) the delta/varint CSR and solves through the streaming path;
  // "edges" forces the classic EdgeList even for a .smpz file; "auto" picks
  // by extension.
  const std::string gfmt = f.get("--graph-format").value_or("auto");
  if (gfmt != "auto" && gfmt != "edges" && gfmt != "compressed") {
    throw smp::Error(smp::ErrorCode::kInvalidInput,
                     "unknown graph format '" + gfmt +
                         "' (valid: auto edges compressed)");
  }
  const bool compressed =
      gfmt == "compressed" || (gfmt == "auto" && ends_with(file, ".smpz"));
  std::optional<CompressedCsr> cz;
  EdgeList g;
  if (compressed) {
    cz = ends_with(file, ".smpz") ? CompressedCsr::open_file(file)
                                  : CompressedCsr::build(load(file));
  } else {
    g = load(file);
  }
  const VertexId num_vertices = compressed ? cz->num_vertices() : g.num_vertices;
  const EdgeId num_edges = compressed ? cz->num_edges() : g.num_edges();
  const std::string alg = f.get("--alg").value_or("champion");
  const int threads = static_cast<int>(f.num("--threads", 1));
  const std::uint64_t seed = f.num("--seed", 1);

  core::MsfOptions opts;
  opts.threads = threads;
  opts.seed = seed;
  opts.find_min = parse_find_min(f.get("--find-min").value_or("auto"));
  opts.find_min_local_best_threads =
      static_cast<int>(f.num("--find-min-local-best-threads", 0));
  opts.find_min_local_best_cutoff =
      static_cast<std::size_t>(f.num("--find-min-local-best-cutoff", 0));
  opts.find_min_prune_block =
      static_cast<std::size_t>(f.num("--find-min-prune-block", 0));
  opts.compact_sort = parse_compact_sort(f.get("--compact-sort").value_or("auto"));
  opts.deferred_compact =
      parse_deferred_compact(f.get("--deferred-compact").value_or("auto"));
  if (const auto thr = f.real("--compact-live-threshold")) {
    if (*thr <= 0 || *thr > 1) {
      throw smp::Error(smp::ErrorCode::kInvalidInput,
                       "--compact-live-threshold must be in (0, 1]");
    }
    opts.compact_live_threshold = *thr;
  }
  opts.compact_chunk = static_cast<std::size_t>(f.num("--compact-chunk", 0));

  // --auto-tune: measure this machine's crossover points and install them as
  // the process-global cutoffs before solving (see pprim/machine.hpp).
  if (f.has("--auto-tune")) {
    const auto cal = smp::auto_calibrate();
    std::printf(
        "auto-tune: parallel-for cutoff %zu, sample-sort cutoff %zu,"
        " hash-seq cutoff %zu (%.3fs)\n",
        cal.parallel_for_cutoff, cal.sample_sort_cutoff,
        cal.compact_hash_seq_cutoff, cal.elapsed_s);
  }

  // Asking for more threads than the machine has is legal (the paper's
  // oversubscription runs do exactly that) but silently skews timings, so
  // say it out loud once per solve.
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw != 0 && threads > static_cast<int>(hw)) {
    std::fprintf(stderr,
                 "warning: %d threads requested but only %u hardware thread(s)"
                 " available; timings reflect oversubscription\n",
                 threads, hw);
  }

  core::StepTimes steps;
  core::PhaseStats pstats;
  if (f.has("--steps")) opts.step_times = &steps;
  const auto stats_path = f.get("--stats-json");
  if (stats_path) {
    // The dump wants the instrumentation regardless of --steps.
    opts.step_times = &steps;
    opts.phase_stats = &pstats;
  }

  // Execution budget: wall-clock deadline and/or arena memory cap.  The
  // solver fails as an smp::Error (distinct exit code) instead of running
  // away; a tripped memory cap degrades to sequential Kruskal unless
  // --no-fallback asks for a hard failure.
  smp::ExecutionBudget budget;
  bool have_budget = false;
  if (const auto timeout = f.real("--timeout")) {
    budget.set_deadline_after(*timeout);
    have_budget = true;
  }
  if (const auto cap = f.get("--mem-cap")) {
    budget.set_memory_cap(f.num("--mem-cap", 0));
    have_budget = true;
  }
  if (have_budget) opts.budget = &budget;
  opts.allow_sequential_fallback = !f.has("--no-fallback");

  opts.algorithm = parse_algorithm(alg);

  const SolveMode mode = parse_mode(f.get("--mode").value_or("static"));
  if (mode == SolveMode::kDynamic) {
    if (stats_path) usage("--stats-json needs --mode static");
    if (compressed) usage("--mode dynamic needs an edge-list input");
    return solve_dynamic(f, g, opts, alg);
  }
  if (f.get("--update-trace") || f.get("--batch-size")) {
    usage("--update-trace/--batch-size need --mode dynamic");
  }

  if (compressed) {
    std::printf("storage: compressed csr, %.2f structure B/edge"
                " (+%zu B/edge weights)%s\n",
                num_edges > 0 ? static_cast<double>(cz->structure_bytes()) /
                                    static_cast<double>(num_edges)
                              : 0.0,
                sizeof(Weight), cz->mapped() ? ", mmap" : "");
  }
  WallTimer t;
  const MsfResult r = compressed
                          ? core::minimum_spanning_forest_compressed(*cz, opts)
                          : core::minimum_spanning_forest(g, opts);
  const double secs = t.elapsed_s();
  std::printf("%s (p=%d): %zu edges, weight %.6f, %zu tree(s), %.3fs\n",
              alg.c_str(), threads, r.edges.size(), r.total_weight, r.num_trees,
              secs);
  if (r.degraded_to_sequential) {
    std::printf("note: degraded to sequential kruskal (memory budget)\n");
  }
  if (stats_path) {
    write_stats_json(*stats_path, alg, opts, num_vertices, num_edges, r, secs,
                     steps, pstats);
    std::printf("stats: wrote %s\n", stats_path->c_str());
  }
  if (f.has("--steps")) {
    std::printf("steps: find-min %.3fs connect %.3fs compact %.3fs other %.3fs\n",
                steps.find_min, steps.connect, steps.compact, steps.other);
  }
  if (f.has("--validate")) {
    // Full check: structure (membership/acyclicity/maximality) plus the
    // cycle property for every non-forest edge, in O(m log n).  The
    // compressed path verifies against its canonical decoded list — the
    // same graph the solve saw.
    if (compressed) g = cz->decode_edge_list();
    std::string err;
    const bool ok = core::verify_msf(g, r, &err);
    std::printf("validation: %s\n", ok ? "OK" : err.c_str());
    if (!ok) return 1;
  }
  return 0;
}

int cmd_cc(const Flags& f) {
  if (f.positional.size() != 1) usage("cc needs exactly one FILE");
  const EdgeList g = load(f.positional[0]);
  const int threads = static_cast<int>(f.num("--threads", 1));
  WallTimer t;
  const auto cc = core::connected_components(g, threads);
  std::printf("components: %zu (%.3fs, p=%d)\n", cc.num_components, t.elapsed_s(),
              threads);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Flags f = parse(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(f);
    if (cmd == "info") return cmd_info(f);
    if (cmd == "convert") return cmd_convert(f);
    if (cmd == "solve") return cmd_solve(f);
    if (cmd == "cc") return cmd_cc(f);
    usage(("unknown command " + cmd).c_str());
  } catch (const smp::Error& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    switch (ex.code()) {
      case smp::ErrorCode::kInvalidInput:
        return 3;
      case smp::ErrorCode::kCancelled:
        return 4;
      case smp::ErrorCode::kDeadlineExceeded:
        return 5;
      case smp::ErrorCode::kOutOfMemory:
        return 6;
    }
    return 1;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
}
