// smpmsf — command-line front end for the library.
//
//   smpmsf gen --type T --n N [--m M] [--k K] [--seed S] -o FILE
//   smpmsf info FILE
//   smpmsf convert IN OUT           (format chosen by extension: .smpg = binary)
//   smpmsf solve [--alg A] [--threads P] [--seed S] [--timeout SECS]
//                [--mem-cap BYTES] [--no-fallback] [--validate] [--steps] FILE
//   smpmsf cc [--threads P] FILE
//
// Graph types: random (needs --m), mesh2d, mesh2d60, mesh3d40,
// geometric (--k), str0..str3, rmat (needs --m).
// Algorithms: bor-el bor-al bor-alm bor-fal mst-bc filter-kruskal sample-filter
//             prim kruskal boruvka.
//
// Exit codes: 0 success, 1 runtime/validation failure, 2 usage, then one per
// smp::ErrorCode class — 3 invalid input, 4 cancelled, 5 deadline exceeded,
// 6 out of memory.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cmath>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/connected_components.hpp"
#include "core/error.hpp"
#include "core/filter_kruskal.hpp"
#include "core/sample_filter.hpp"
#include "core/verify_msf.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "graph/validate.hpp"
#include "pprim/timer.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage:\n"
               "  smpmsf gen --type T --n N [--m M] [--k K] [--seed S] -o FILE\n"
               "  smpmsf info FILE\n"
               "  smpmsf convert IN OUT\n"
               "  smpmsf solve [--alg A] [--threads P] [--seed S]"
               " [--timeout SECS] [--mem-cap BYTES] [--no-fallback]"
               " [--validate] [--steps] FILE\n"
               "  smpmsf cc [--threads P] FILE\n"
               "types: random mesh2d mesh2d60 mesh3d40 geometric str0-str3 rmat\n"
               "algs:  bor-el bor-al bor-alm bor-fal mst-bc bor-uf par-kruskal filter-kruskal sample-filter"
               " prim kruskal boruvka\n");
  std::exit(2);
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

EdgeList load(const std::string& path) {
  return ends_with(path, ".smpg") ? read_binary_file(path) : read_dimacs_file(path);
}

void store(const std::string& path, const EdgeList& g) {
  if (ends_with(path, ".smpg")) {
    write_binary_file(path, g);
  } else {
    write_dimacs_file(path, g);
  }
}

/// Tiny flag parser: collects --key value pairs and positionals.
struct Flags {
  std::vector<std::pair<std::string, std::string>> kv;
  std::vector<std::string> positional;
  std::vector<std::string> switches;

  [[nodiscard]] std::optional<std::string> get(const char* key) const {
    for (const auto& [k, v] : kv) {
      if (k == key) return v;
    }
    return std::nullopt;
  }
  [[nodiscard]] bool has(const char* name) const {
    for (const auto& s : switches) {
      if (s == name) return true;
    }
    return false;
  }
  [[nodiscard]] std::uint64_t num(const char* key, std::uint64_t fallback) const {
    const auto v = get(key);
    return v ? std::strtoull(v->c_str(), nullptr, 10) : fallback;
  }
  [[nodiscard]] std::optional<double> real(const char* key) const {
    const auto v = get(key);
    if (!v) return std::nullopt;
    return std::strtod(v->c_str(), nullptr);
  }
};

Flags parse(int argc, char** argv, int from) {
  Flags f;
  static const char* kSwitches[] = {"--validate", "--steps", "--no-fallback"};
  for (int i = from; i < argc; ++i) {
    const std::string a = argv[i];
    bool is_switch = false;
    for (const char* s : kSwitches) {
      if (a == s) {
        f.switches.push_back(a);
        is_switch = true;
      }
    }
    if (is_switch) continue;
    if (a.rfind("--", 0) == 0 || a == "-o") {
      if (i + 1 >= argc) usage(("missing value for " + a).c_str());
      f.kv.emplace_back(a == "-o" ? "--out" : a, argv[++i]);
    } else {
      f.positional.push_back(a);
    }
  }
  return f;
}

int cmd_gen(const Flags& f) {
  const auto type = f.get("--type");
  const auto out = f.get("--out");
  if (!type || !out) usage("gen needs --type and -o");
  const auto n = static_cast<VertexId>(f.num("--n", 0));
  const auto m = static_cast<EdgeId>(f.num("--m", 0));
  const auto k = static_cast<int>(f.num("--k", 6));
  const std::uint64_t seed = f.num("--seed", 1);
  if (n == 0) usage("gen needs --n > 0");

  EdgeList g;
  const auto side = static_cast<VertexId>(std::lround(std::sqrt(double(n))));
  const auto side3 = static_cast<VertexId>(std::lround(std::cbrt(double(n))));
  if (*type == "random") {
    if (m == 0) usage("random needs --m");
    g = random_graph(n, m, seed);
  } else if (*type == "mesh2d") {
    g = mesh2d(side, side, seed);
  } else if (*type == "mesh2d60") {
    g = mesh2d_p(side, side, 0.6, seed);
  } else if (*type == "mesh3d40") {
    g = mesh3d_p(side3, side3, side3, 0.4, seed);
  } else if (*type == "geometric") {
    g = geometric_knn(n, k, seed);
  } else if (type->rfind("str", 0) == 0 && type->size() == 4) {
    g = structured_graph((*type)[3] - '0', n, seed);
  } else if (*type == "rmat") {
    if (m == 0) usage("rmat needs --m");
    int scale = 0;
    while ((VertexId{1} << scale) < n) ++scale;
    g = rmat_graph(scale, m, seed);
  } else {
    usage(("unknown graph type " + *type).c_str());
  }
  store(*out, g);
  std::printf("wrote %s: vertices: %u edges: %llu\n", out->c_str(), g.num_vertices,
              static_cast<unsigned long long>(g.num_edges()));
  return 0;
}

int cmd_info(const Flags& f) {
  if (f.positional.size() != 1) usage("info needs exactly one FILE");
  const EdgeList g = load(f.positional[0]);
  const auto ds = degree_stats(g);
  std::printf("vertices: %u\nedges: %llu\ncomponents: %zu\n", g.num_vertices,
              static_cast<unsigned long long>(g.num_edges()), num_components(g));
  std::printf("degree min/mean/max: %zu / %.2f / %zu\n", ds.min_degree,
              ds.mean_degree, ds.max_degree);
  std::printf("simple: %s\n", is_simple(g) ? "yes" : "no");
  return 0;
}

int cmd_convert(const Flags& f) {
  if (f.positional.size() != 2) usage("convert needs IN and OUT");
  store(f.positional[1], load(f.positional[0]));
  std::printf("converted %s -> %s\n", f.positional[0].c_str(), f.positional[1].c_str());
  return 0;
}

int cmd_solve(const Flags& f) {
  if (f.positional.size() != 1) usage("solve needs exactly one FILE");
  const EdgeList g = load(f.positional[0]);
  const std::string alg = f.get("--alg").value_or("bor-fal");
  const int threads = static_cast<int>(f.num("--threads", 1));
  const std::uint64_t seed = f.num("--seed", 1);

  core::MsfOptions opts;
  opts.threads = threads;
  opts.seed = seed;
  core::StepTimes steps;
  if (f.has("--steps")) opts.step_times = &steps;

  // Execution budget: wall-clock deadline and/or arena memory cap.  The
  // solver fails as an smp::Error (distinct exit code) instead of running
  // away; a tripped memory cap degrades to sequential Kruskal unless
  // --no-fallback asks for a hard failure.
  smp::ExecutionBudget budget;
  bool have_budget = false;
  if (const auto timeout = f.real("--timeout")) {
    budget.set_deadline_after(*timeout);
    have_budget = true;
  }
  if (const auto cap = f.get("--mem-cap")) {
    budget.set_memory_cap(f.num("--mem-cap", 0));
    have_budget = true;
  }
  if (have_budget) opts.budget = &budget;
  opts.allow_sequential_fallback = !f.has("--no-fallback");

  if (alg == "bor-el") {
    opts.algorithm = core::Algorithm::kBorEL;
  } else if (alg == "bor-al") {
    opts.algorithm = core::Algorithm::kBorAL;
  } else if (alg == "bor-alm") {
    opts.algorithm = core::Algorithm::kBorALM;
  } else if (alg == "bor-fal") {
    opts.algorithm = core::Algorithm::kBorFAL;
  } else if (alg == "mst-bc") {
    opts.algorithm = core::Algorithm::kMstBC;
  } else if (alg == "par-kruskal") {
    opts.algorithm = core::Algorithm::kParKruskal;
  } else if (alg == "filter-kruskal") {
    opts.algorithm = core::Algorithm::kFilterKruskal;
  } else if (alg == "sample-filter") {
    opts.algorithm = core::Algorithm::kSampleFilter;
  } else if (alg == "bor-uf") {
    opts.algorithm = core::Algorithm::kBorUF;
  } else if (alg == "prim") {
    opts.algorithm = core::Algorithm::kSeqPrim;
  } else if (alg == "kruskal") {
    opts.algorithm = core::Algorithm::kSeqKruskal;
  } else if (alg == "boruvka") {
    opts.algorithm = core::Algorithm::kSeqBoruvka;
  } else {
    usage(("unknown algorithm " + alg).c_str());
  }
  WallTimer t;
  const MsfResult r = core::minimum_spanning_forest(g, opts);
  const double secs = t.elapsed_s();
  std::printf("%s (p=%d): %zu edges, weight %.6f, %zu tree(s), %.3fs\n",
              alg.c_str(), threads, r.edges.size(), r.total_weight, r.num_trees,
              secs);
  if (r.degraded_to_sequential) {
    std::printf("note: degraded to sequential kruskal (memory budget)\n");
  }
  if (f.has("--steps")) {
    std::printf("steps: find-min %.3fs connect %.3fs compact %.3fs other %.3fs\n",
                steps.find_min, steps.connect, steps.compact, steps.other);
  }
  if (f.has("--validate")) {
    // Full check: structure (membership/acyclicity/maximality) plus the
    // cycle property for every non-forest edge, in O(m log n).
    std::string err;
    const bool ok = core::verify_msf(g, r, &err);
    std::printf("validation: %s\n", ok ? "OK" : err.c_str());
    if (!ok) return 1;
  }
  return 0;
}

int cmd_cc(const Flags& f) {
  if (f.positional.size() != 1) usage("cc needs exactly one FILE");
  const EdgeList g = load(f.positional[0]);
  const int threads = static_cast<int>(f.num("--threads", 1));
  WallTimer t;
  const auto cc = core::connected_components(g, threads);
  std::printf("components: %zu (%.3fs, p=%d)\n", cc.num_components, t.elapsed_s(),
              threads);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Flags f = parse(argc, argv, 2);
  try {
    if (cmd == "gen") return cmd_gen(f);
    if (cmd == "info") return cmd_info(f);
    if (cmd == "convert") return cmd_convert(f);
    if (cmd == "solve") return cmd_solve(f);
    if (cmd == "cc") return cmd_cc(f);
    usage(("unknown command " + cmd).c_str());
  } catch (const smp::Error& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    switch (ex.code()) {
      case smp::ErrorCode::kInvalidInput:
        return 3;
      case smp::ErrorCode::kCancelled:
        return 4;
      case smp::ErrorCode::kDeadlineExceeded:
        return 5;
      case smp::ErrorCode::kOutOfMemory:
        return 6;
    }
    return 1;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
}
