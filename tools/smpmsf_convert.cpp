// smpmsf-convert — out-of-core graph format converter for billion-edge runs.
//
//   smpmsf-convert [--run-edges N] [--tmp-dir DIR] IN OUT
//
// IN:  .smpg (binary edge stream) or DIMACS text (.gr / anything else).
// OUT: .smpz  delta/varint-compressed CSR (see graph/compressed_csr.hpp) —
//             the input is externally sorted into canonical (u, v) order in
//             runs of --run-edges edges (default 16M, ~384 MiB of scratch),
//             then k-way merged; parallel edges are deduplicated during the
//             merge keeping the ⟨weight, input-position⟩-minimal one, the
//             same canonical winner CompressedCsr::build and the readers'
//             kCanonicalize policy pick.  Peak memory is the run buffer plus
//             12(n+1) bytes of offsets — never the edge list.
//      .slab  mmap-backed WEdge records (see dynamic/edge_slab.hpp), a
//             verbatim streaming copy (the store is a multigraph; parallel
//             edges survive).
//
// Exit codes match smpmsf: 0 success, 2 usage, 3 invalid input.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/types.hpp"
#include "pprim/timer.hpp"

namespace {

using namespace smp;
using graph::EdgeId;
using graph::VertexId;
using graph::Weight;
using graph::WeightOrder;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n", msg);
  std::fprintf(stderr,
               "usage: smpmsf-convert [--run-edges N] [--tmp-dir DIR] IN OUT\n"
               "  IN:  .smpg binary or DIMACS text\n"
               "  OUT: .smpz compressed CSR | .slab mmap edge slab\n");
  std::exit(2);
}

[[noreturn]] void fail(const std::string& what) {
  throw Error(ErrorCode::kInvalidInput, what);
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// One normalized input edge: u <= v, idx = global input position (the
/// WeightOrder tie-break, which is what makes the merge's keep-first
/// deduplication canonical).
struct Rec {
  std::uint32_t u, v;
  double w;
  std::uint64_t idx;
};
static_assert(sizeof(Rec) == 24);

[[nodiscard]] bool rec_less(const Rec& a, const Rec& b) {
  if (a.u != b.u) return a.u < b.u;
  if (a.v != b.v) return a.v < b.v;
  return WeightOrder{a.w, a.idx} < WeightOrder{b.w, b.idx};
}

/// Streaming edge producers -------------------------------------------------

class EdgeSource {
 public:
  virtual ~EdgeSource() = default;
  [[nodiscard]] virtual VertexId num_vertices() const = 0;
  /// Declared edge count (exact for .smpg; DIMACS headers may lie, in which
  /// case the actual streamed count wins).
  [[nodiscard]] virtual std::uint64_t declared_edges() const = 0;
  /// Next edge, or false at end-of-stream.  Validates endpoints/weight and
  /// throws Error{kInvalidInput} with position context on garbage.
  virtual bool next(VertexId& u, VertexId& v, Weight& w) = 0;
};

class SmpgSource final : public EdgeSource {
 public:
  explicit SmpgSource(const std::string& path) : path_(path) {
    f_ = std::fopen(path.c_str(), "rb");
    if (f_ == nullptr) fail("cannot open " + path);
    char magic[4];
    std::uint32_t version = 0;
    if (std::fread(magic, 1, 4, f_) != 4 ||
        std::memcmp(magic, "SMPG", 4) != 0) {
      fail(path + ": not an SMPG file");
    }
    if (std::fread(&version, 4, 1, f_) != 1 || version != 1) {
      fail(path + ": unsupported SMPG version");
    }
    if (std::fread(&n_, 4, 1, f_) != 1 || std::fread(&m_, 8, 1, f_) != 1) {
      fail(path + ": truncated SMPG header");
    }
  }
  ~SmpgSource() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  [[nodiscard]] VertexId num_vertices() const override { return n_; }
  [[nodiscard]] std::uint64_t declared_edges() const override { return m_; }

  bool next(VertexId& u, VertexId& v, Weight& w) override {
    if (read_ == m_) return false;
    struct {
      std::uint32_t u, v;
      double w;
    } rec;
    if (std::fread(&rec, sizeof rec, 1, f_) != 1) {
      fail(path_ + ": truncated at edge " + std::to_string(read_) + " of " +
           std::to_string(m_));
    }
    ++read_;
    u = rec.u;
    v = rec.v;
    w = rec.w;
    if (u == v || u >= n_ || v >= n_ || !std::isfinite(w)) {
      fail(path_ + ": invalid edge record " + std::to_string(read_ - 1));
    }
    return true;
  }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  VertexId n_ = 0;
  std::uint64_t m_ = 0;
  std::uint64_t read_ = 0;
};

class DimacsSource final : public EdgeSource {
 public:
  explicit DimacsSource(const std::string& path) : path_(path) {
    f_ = std::fopen(path.c_str(), "r");
    if (f_ == nullptr) fail("cannot open " + path);
    char line[256];
    while (std::fgets(line, sizeof line, f_) != nullptr) {
      ++lineno_;
      if (line[0] == 'c' || line[0] == '\n') continue;
      unsigned long long n = 0, m = 0;
      if (std::sscanf(line, "p edge %llu %llu", &n, &m) == 2) {
        n_ = static_cast<VertexId>(n);
        m_ = m;
        return;
      }
      fail(path + ": expected 'p edge N M' header, line " +
           std::to_string(lineno_));
    }
    fail(path + ": missing 'p edge' header");
  }
  ~DimacsSource() override {
    if (f_ != nullptr) std::fclose(f_);
  }

  [[nodiscard]] VertexId num_vertices() const override { return n_; }
  [[nodiscard]] std::uint64_t declared_edges() const override { return m_; }

  bool next(VertexId& u, VertexId& v, Weight& w) override {
    char line[256];
    while (std::fgets(line, sizeof line, f_) != nullptr) {
      ++lineno_;
      if (line[0] == 'c' || line[0] == '\n') continue;
      unsigned long long lu = 0, lv = 0;
      double lw = 0;
      if (std::sscanf(line, "e %llu %llu %lf", &lu, &lv, &lw) != 3) {
        fail(path_ + ": bad edge line " + std::to_string(lineno_));
      }
      // 1-based on disk, like the reader in graph/io.cpp.
      if (lu == 0 || lv == 0 || lu > n_ || lv > n_ || lu == lv ||
          !std::isfinite(lw)) {
        fail(path_ + ": invalid edge at line " + std::to_string(lineno_));
      }
      u = static_cast<VertexId>(lu - 1);
      v = static_cast<VertexId>(lv - 1);
      w = lw;
      return true;
    }
    return false;
  }

 private:
  std::string path_;
  std::FILE* f_ = nullptr;
  VertexId n_ = 0;
  std::uint64_t m_ = 0;
  std::size_t lineno_ = 0;
};

/// External sort ------------------------------------------------------------

/// Buffered reader over one sorted run file.
class RunReader {
 public:
  explicit RunReader(const std::string& path) : path_(path) {
    f_ = std::fopen(path.c_str(), "rb");
    if (f_ == nullptr) fail("cannot reopen run file " + path);
    refill();
  }
  ~RunReader() {
    if (f_ != nullptr) std::fclose(f_);
    std::remove(path_.c_str());
  }

  [[nodiscard]] bool empty() const { return pos_ == buf_.size(); }
  [[nodiscard]] const Rec& head() const { return buf_[pos_]; }
  void pop() {
    ++pos_;
    if (pos_ == buf_.size()) refill();
  }

 private:
  void refill() {
    buf_.resize(kBufRecs);
    const std::size_t got = std::fread(buf_.data(), sizeof(Rec), kBufRecs, f_);
    buf_.resize(got);
    pos_ = 0;
  }

  static constexpr std::size_t kBufRecs = std::size_t{1} << 16;  // 1.5 MiB
  std::string path_;
  std::FILE* f_ = nullptr;
  std::vector<Rec> buf_;
  std::size_t pos_ = 0;
};

std::string run_path(const std::string& tmp_dir, const std::string& out,
                     std::size_t i) {
  std::string base = out;
  const std::size_t slash = base.find_last_of('/');
  if (slash != std::string::npos) base = base.substr(slash + 1);
  return (tmp_dir.empty() ? out : tmp_dir + "/" + base) + ".run" +
         std::to_string(i);
}

int convert_smpz(EdgeSource& src, const std::string& out,
                 std::size_t run_edges, const std::string& tmp_dir) {
  // Phase 1: normalized sorted runs of Rec spilled to temp files.
  std::vector<std::string> runs;
  std::vector<Rec> buf;
  buf.reserve(run_edges);
  std::uint64_t total_in = 0;
  const auto spill = [&] {
    if (buf.empty()) return;
    std::sort(buf.begin(), buf.end(), rec_less);
    const std::string path = run_path(tmp_dir, out, runs.size());
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) fail("cannot create run file " + path);
    const bool ok =
        std::fwrite(buf.data(), sizeof(Rec), buf.size(), f) == buf.size();
    std::fclose(f);
    if (!ok) {
      std::remove(path.c_str());
      fail("short write to run file " + path);
    }
    runs.push_back(path);
    buf.clear();
  };

  VertexId u = 0, v = 0;
  Weight w = 0;
  while (src.next(u, v, w)) {
    buf.push_back(Rec{std::min(u, v), std::max(u, v), w, total_in});
    ++total_in;
    if (buf.size() == run_edges) spill();
  }
  spill();

  // Phase 2: k-way heap merge, deduplicating (u, v) keep-first — the global
  // order is (u, v, WeightOrder), so the first record of every group is the
  // canonical winner.  Output streams through CompressedCsrWriter.
  std::vector<std::unique_ptr<RunReader>> readers;
  readers.reserve(runs.size());
  for (const std::string& r : runs) {
    readers.push_back(std::make_unique<RunReader>(r));
  }
  const auto heap_greater = [&](std::size_t a, std::size_t b) {
    return rec_less(readers[b]->head(), readers[a]->head());
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>,
                      decltype(heap_greater)>
      heap(heap_greater);
  for (std::size_t i = 0; i < readers.size(); ++i) {
    if (!readers[i]->empty()) heap.push(i);
  }

  graph::CompressedCsrWriter writer(out, src.num_vertices());
  std::uint64_t dropped = 0;
  std::uint32_t last_u = 0, last_v = 0;
  bool have_last = false;
  while (!heap.empty()) {
    const std::size_t i = heap.top();
    heap.pop();
    const Rec r = readers[i]->head();
    readers[i]->pop();
    if (!readers[i]->empty()) heap.push(i);
    if (have_last && r.u == last_u && r.v == last_v) {
      ++dropped;  // parallel edge: an earlier (lighter-or-older) record won
      continue;
    }
    writer.add_edge(r.u, r.v, r.w);
    last_u = r.u;
    last_v = r.v;
    have_last = true;
  }
  const EdgeId m = writer.finish();

  std::printf("wrote %s: vertices %u, edges %llu (%llu read, %llu parallel"
              " dropped, %zu run(s) of <= %zu)\n",
              out.c_str(), src.num_vertices(),
              static_cast<unsigned long long>(m),
              static_cast<unsigned long long>(total_in),
              static_cast<unsigned long long>(dropped), runs.size(),
              run_edges);
  return 0;
}

int convert_slab(EdgeSource& src, const std::string& out) {
  std::FILE* f = std::fopen(out.c_str(), "wb");
  if (f == nullptr) fail("cannot open " + out + " for write");
  // Header now, patch the edge count once the stream is exhausted (DIMACS
  // declared counts are not trusted).
  const char magic[4] = {'S', 'M', 'P', 'B'};
  const std::uint32_t version = 1;
  const std::uint32_t pad = 0;
  const VertexId n = src.num_vertices();
  std::uint64_t m = 0;
  bool ok = std::fwrite(magic, 1, 4, f) == 4 &&
            std::fwrite(&version, 4, 1, f) == 1 &&
            std::fwrite(&n, 4, 1, f) == 1 && std::fwrite(&pad, 4, 1, f) == 1 &&
            std::fwrite(&m, 8, 1, f) == 1;
  std::vector<graph::WEdge> buf;
  buf.reserve(std::size_t{1} << 16);
  VertexId u = 0, v = 0;
  Weight w = 0;
  while (ok && src.next(u, v, w)) {
    buf.push_back(graph::WEdge{u, v, w});
    ++m;
    if (buf.size() == buf.capacity()) {
      ok = std::fwrite(buf.data(), sizeof(graph::WEdge), buf.size(), f) ==
           buf.size();
      buf.clear();
    }
  }
  if (ok && !buf.empty()) {
    ok = std::fwrite(buf.data(), sizeof(graph::WEdge), buf.size(), f) ==
         buf.size();
  }
  ok = ok && std::fseek(f, 16, SEEK_SET) == 0 && std::fwrite(&m, 8, 1, f) == 1;
  ok = std::fclose(f) == 0 && ok;
  f = nullptr;
  if (!ok) {
    std::remove(out.c_str());
    fail("write failed for " + out);
  }
  std::printf("wrote %s: vertices %u, edges %llu (verbatim multigraph copy)\n",
              out.c_str(), n, static_cast<unsigned long long>(m));
  return 0;
}

int run(int argc, char** argv) {
  std::size_t run_edges = std::size_t{1} << 24;  // 16M records, ~384 MiB
  std::string tmp_dir;
  std::vector<std::string> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&](const char* flag) -> std::string {
      const std::size_t eq = a.find('=');
      if (eq != std::string::npos) return a.substr(eq + 1);
      if (i + 1 >= argc) usage(("missing value for " + std::string(flag)).c_str());
      return argv[++i];
    };
    if (a.rfind("--run-edges", 0) == 0) {
      run_edges = std::strtoull(value("--run-edges").c_str(), nullptr, 10);
      if (run_edges == 0) usage("--run-edges must be >= 1");
    } else if (a.rfind("--tmp-dir", 0) == 0) {
      tmp_dir = value("--tmp-dir");
    } else if (a.rfind("--", 0) == 0) {
      usage(("unknown flag " + a).c_str());
    } else {
      pos.push_back(a);
    }
  }
  if (pos.size() != 2) usage("need IN and OUT");
  const std::string& in = pos[0];
  const std::string& out = pos[1];

  std::unique_ptr<EdgeSource> src;
  if (ends_with(in, ".smpg")) {
    src = std::make_unique<SmpgSource>(in);
  } else {
    src = std::make_unique<DimacsSource>(in);
  }

  WallTimer t;
  int rc;
  if (ends_with(out, ".smpz")) {
    rc = convert_smpz(*src, out, run_edges, tmp_dir);
  } else if (ends_with(out, ".slab")) {
    rc = convert_slab(*src, out);
  } else {
    usage("OUT must end in .smpz or .slab");
  }
  std::fprintf(stderr, "elapsed: %.3fs\n", t.elapsed_s());
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const smp::Error& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 3;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
}
