// ForestIndex: randomized property tests against brute force.  Path-max is
// checked against a BFS walk over the forest adjacency (independent of the
// skip tables), connectivity against a union-find over the live edges, cut
// against a union-find restricted to edges with weight <= lambda, and topk
// against a full sort of the live store — across thread counts, after
// apply_batch refreshes, and on disconnected inputs.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <queue>
#include <random>
#include <span>
#include <vector>

#include "dynamic/dynamic_msf.hpp"
#include "graph/generators.hpp"
#include "graph/types.hpp"
#include "pprim/thread_team.hpp"
#include "query/forest_index.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

struct UnionFind {
  std::vector<VertexId> p;
  explicit UnionFind(VertexId n) : p(n) {
    for (VertexId i = 0; i < n; ++i) p[i] = i;
  }
  VertexId find(VertexId x) {
    while (p[x] != x) x = p[x] = p[p[x]];
    return x;
  }
  void unite(VertexId a, VertexId b) { p[find(a)] = find(b); }
};

/// Brute-force bottleneck: BFS over the forest adjacency from u, then walk
/// v's parent chain collecting the ⟨weight, store-id⟩ maximum.
struct NaivePathMax {
  bool connected = false;
  EdgeId edge_id = kInvalidEdge;
  Weight weight = 0;
};

NaivePathMax naive_path_max(const query::ForestIndex& idx, VertexId n,
                            VertexId u, VertexId v) {
  // Forest adjacency rebuilt from the public edge list accessors.
  std::vector<std::vector<std::pair<VertexId, std::size_t>>> adj(n);
  for (std::size_t i = 0; i < idx.num_forest_edges(); ++i) {
    const WEdge& e = idx.forest_edge(i);
    adj[e.u].push_back({e.v, i});
    adj[e.v].push_back({e.u, i});
  }
  std::vector<std::int64_t> via(n, -1);  // forest position of the entry edge
  std::vector<VertexId> from(n, kInvalidVertex);
  std::queue<VertexId> q;
  q.push(u);
  from[u] = u;
  while (!q.empty()) {
    const VertexId x = q.front();
    q.pop();
    if (x == v) break;
    for (const auto& [y, i] : adj[x]) {
      if (from[y] != kInvalidVertex) continue;
      from[y] = x;
      via[y] = static_cast<std::int64_t>(i);
      q.push(y);
    }
  }
  NaivePathMax r;
  if (from[v] == kInvalidVertex) return r;
  r.connected = true;
  if (u == v) return r;
  bool has = false;
  for (VertexId x = v; x != u; x = from[x]) {
    const auto i = static_cast<std::size_t>(via[x]);
    const WEdge& e = idx.forest_edge(i);
    const EdgeId id = idx.forest_id(i);
    if (!has || e.w > r.weight || (e.w == r.weight && id > r.edge_id)) {
      r.weight = e.w;
      r.edge_id = id;
      has = true;
    }
  }
  return r;
}

dynamic::DynamicMsfOptions dyn_opts(ThreadTeam& team, std::uint64_t seed) {
  dynamic::DynamicMsfOptions o;
  o.team = &team;
  o.msf.seed = seed;
  return o;
}

class ForestIndexP : public ::testing::TestWithParam<int> {};

TEST_P(ForestIndexP, PathMaxAndConnMatchBruteForce) {
  const int p = GetParam();
  ThreadTeam team(p);
  // Sparse enough that the forest has several components.
  for (const auto [n, m] : {std::pair<VertexId, EdgeId>{60, 40},
                            {200, 600}, {400, 300}}) {
    const EdgeList g = random_graph(n, m, 42 + n);
    dynamic::DynamicMsf d(g, dyn_opts(team, 1));
    const query::ForestIndex idx(
        team, d.store(), std::span<const EdgeId>(d.forest_edge_ids()), 1);
    EXPECT_EQ(idx.num_forest_edges(), d.forest_edge_ids().size());

    UnionFind uf(n);
    for (const WEdge& e : g.edges) uf.unite(e.u, e.v);

    std::mt19937_64 rng(7 * n);
    std::uniform_int_distribution<VertexId> vtx(0, n - 1);
    for (int t = 0; t < 300; ++t) {
      const VertexId u = vtx(rng), v = vtx(rng);
      EXPECT_EQ(idx.connected(u, v), uf.find(u) == uf.find(v));
      const auto pm = idx.path_max(u, v);
      const auto ref = naive_path_max(idx, n, u, v);
      ASSERT_EQ(pm.connected, ref.connected) << "u=" << u << " v=" << v;
      if (!ref.connected || u == v) continue;
      EXPECT_EQ(pm.edge_id, ref.edge_id) << "u=" << u << " v=" << v;
      EXPECT_EQ(pm.weight, ref.weight);
      // The reported endpoints are the bottleneck edge's endpoints.
      const WEdge& be = d.store().edge(pm.edge_id);
      EXPECT_TRUE((pm.u == be.u && pm.v == be.v) ||
                  (pm.u == be.v && pm.v == be.u));
    }
  }
}

TEST_P(ForestIndexP, BuildIsDeterministicAcrossThreadCounts) {
  const int p = GetParam();
  const EdgeList g = random_graph(500, 1500, 99);
  ThreadTeam ref_team(1);
  dynamic::DynamicMsf ref_d(g, dyn_opts(ref_team, 3));
  const query::ForestIndex ref(
      ref_team, ref_d.store(),
      std::span<const EdgeId>(ref_d.forest_edge_ids()), 5);

  ThreadTeam team(p);
  dynamic::DynamicMsf d(g, dyn_opts(team, 3));
  const query::ForestIndex idx(
      team, d.store(), std::span<const EdgeId>(d.forest_edge_ids()), 5);

  ASSERT_EQ(idx.num_vertices(), ref.num_vertices());
  ASSERT_EQ(idx.num_forest_edges(), ref.num_forest_edges());
  EXPECT_EQ(idx.tour(), ref.tour());
  for (VertexId v = 0; v < idx.num_vertices(); ++v) {
    EXPECT_EQ(idx.component(v), ref.component(v));
    EXPECT_EQ(idx.parent(v), ref.parent(v));
    EXPECT_EQ(idx.depth(v), ref.depth(v));
    EXPECT_EQ(idx.tin(v), ref.tin(v));
    EXPECT_EQ(idx.tout(v), ref.tout(v));
  }
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<VertexId> vtx(0, 499);
  for (int t = 0; t < 200; ++t) {
    const VertexId u = vtx(rng), v = vtx(rng);
    const auto a = idx.path_max(u, v);
    const auto b = ref.path_max(u, v);
    EXPECT_EQ(a.connected, b.connected);
    EXPECT_EQ(a.edge_id, b.edge_id);
    EXPECT_EQ(a.weight, b.weight);
  }
}

TEST_P(ForestIndexP, RefreshAfterApplyBatch) {
  const int p = GetParam();
  ThreadTeam team(p);
  const VertexId n = 300;
  const EdgeList g = random_graph(n, 500, 17);
  dynamic::DynamicMsf d(g, dyn_opts(team, 2));
  std::mt19937_64 rng(23);
  std::uniform_int_distribution<VertexId> vtx(0, n - 1);
  std::uniform_real_distribution<double> wgt(0.0, 1.0);
  std::uint64_t version = 1;
  for (int round = 0; round < 4; ++round) {
    std::vector<WEdge> ins;
    for (int i = 0; i < 20; ++i) {
      VertexId u = vtx(rng), v = vtx(rng);
      while (v == u) v = vtx(rng);
      ins.push_back({u, v, wgt(rng)});
    }
    std::vector<EdgeId> del;
    if (!d.forest_edge_ids().empty()) {
      del.push_back(d.forest_edge_ids()[round % d.forest_edge_ids().size()]);
    }
    d.apply_batch(ins, del);
    const query::ForestIndex idx(
        team, d.store(), std::span<const EdgeId>(d.forest_edge_ids()),
        ++version);
    EXPECT_EQ(idx.version(), version);
    EXPECT_EQ(idx.num_forest_edges(), d.forest_edge_ids().size());
    for (int t = 0; t < 60; ++t) {
      const VertexId u = vtx(rng), v = vtx(rng);
      const auto pm = idx.path_max(u, v);
      const auto ref = naive_path_max(idx, n, u, v);
      ASSERT_EQ(pm.connected, ref.connected);
      if (ref.connected && u != v) {
        EXPECT_EQ(pm.edge_id, ref.edge_id);
        EXPECT_EQ(pm.weight, ref.weight);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ForestIndexP, ::testing::Values(1, 2, 4, 8));

TEST(QueryIndex, DisconnectedAndDegeneratePairs) {
  ThreadTeam team(2);
  // Two components by construction: vertices {0..4} and {5..9}.
  EdgeList g(10);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 0.5);
  g.add_edge(3, 4, 4.0);
  g.add_edge(5, 6, 1.0);
  g.add_edge(6, 7, 3.0);
  dynamic::DynamicMsf d(g, dyn_opts(team, 1));
  const query::ForestIndex idx(
      team, d.store(), std::span<const EdgeId>(d.forest_edge_ids()), 1);

  EXPECT_FALSE(idx.connected(0, 5));
  EXPECT_FALSE(idx.path_max(0, 5).connected);
  EXPECT_FALSE(idx.connected(4, 9));
  EXPECT_FALSE(idx.path_max(4, 9).connected);
  // Isolated vertices are their own component.
  EXPECT_TRUE(idx.connected(8, 8));
  EXPECT_FALSE(idx.connected(8, 9));
  // u == v: connected, but an empty path has no bottleneck edge.
  const auto self = idx.path_max(3, 3);
  EXPECT_TRUE(self.connected);
  EXPECT_EQ(self.edge_id, kInvalidEdge);
  // A straightforward in-tree pair.
  const auto pm = idx.path_max(0, 4);
  EXPECT_TRUE(pm.connected);
  EXPECT_EQ(pm.weight, 4.0);
}

TEST(QueryIndex, EmptyForest) {
  ThreadTeam team(2);
  dynamic::DynamicMsf d(VertexId{6}, dyn_opts(team, 1));
  const query::ForestIndex idx(
      team, d.store(), std::span<const EdgeId>(d.forest_edge_ids()), 1);
  EXPECT_EQ(idx.num_forest_edges(), 0u);
  EXPECT_FALSE(idx.connected(0, 5));
  EXPECT_FALSE(idx.path_max(0, 5).connected);
  const auto cut = idx.cut(1.0);
  EXPECT_EQ(cut.num_clusters, 6u);
}

TEST(QueryIndex, CutMatchesThresholdUnionFind) {
  ThreadTeam team(4);
  const VertexId n = 250;
  const EdgeList g = random_graph(n, 700, 31);
  dynamic::DynamicMsf d(g, dyn_opts(team, 1));
  const query::ForestIndex idx(
      team, d.store(), std::span<const EdgeId>(d.forest_edge_ids()), 1);

  for (const double lambda : {0.0, 0.05, 0.2, 0.5, 0.9, 1.0}) {
    // Single linkage at lambda == components of the graph restricted to
    // edges with weight <= lambda.
    UnionFind uf(n);
    for (const WEdge& e : g.edges) {
      if (e.w <= lambda) uf.unite(e.u, e.v);
    }
    std::vector<VertexId> roots;
    for (VertexId v = 0; v < n; ++v) roots.push_back(uf.find(v));
    std::vector<VertexId> uniq = roots;
    std::sort(uniq.begin(), uniq.end());
    uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());

    std::vector<VertexId> labels;
    const auto cut = idx.cut(lambda, &labels);
    EXPECT_EQ(cut.num_clusters, uniq.size()) << "lambda=" << lambda;
    ASSERT_EQ(labels.size(), static_cast<std::size_t>(n));
    EXPECT_EQ(cut.labels_digest,
              query::labels_digest(std::span<const VertexId>(labels)));
    // Partition equivalence: same label <=> same union-find root.
    std::vector<VertexId> label_of_root(n, kInvalidVertex);
    std::vector<VertexId> root_of_label(n, kInvalidVertex);
    for (VertexId v = 0; v < n; ++v) {
      VertexId& lr = label_of_root[roots[v]];
      if (lr == kInvalidVertex) lr = labels[v];
      EXPECT_EQ(lr, labels[v]) << "lambda=" << lambda << " v=" << v;
      VertexId& rl = root_of_label[labels[v]];
      if (rl == kInvalidVertex) rl = roots[v];
      EXPECT_EQ(rl, roots[v]) << "lambda=" << lambda << " v=" << v;
    }
  }
}

TEST(QueryIndex, TopkMatchesNaiveSort) {
  ThreadTeam team(4);
  const VertexId n = 120;
  const EdgeList g = random_graph(n, 500, 77);
  dynamic::DynamicMsf d(g, dyn_opts(team, 1));
  // Tombstone some slots so the scan has holes to skip.
  std::vector<EdgeId> dels;
  for (EdgeId id = 3; id < 500; id += 7) dels.push_back(id);
  d.apply_batch({}, dels);
  const query::ForestIndex idx(
      team, d.store(), std::span<const EdgeId>(d.forest_edge_ids()), 2);

  // Naive: all live edges ascending by <weight, store id>.
  std::vector<EdgeId> live;
  for (EdgeId id = 0; id < d.store().size(); ++id) {
    if (d.store().is_live(id)) live.push_back(id);
  }
  std::sort(live.begin(), live.end(), [&](EdgeId a, EdgeId b) {
    const Weight wa = d.store().edge(a).w, wb = d.store().edge(b).w;
    return wa != wb ? wa < wb : a < b;
  });

  for (const std::size_t k : {std::size_t{1}, std::size_t{10},
                              std::size_t{64}, live.size() + 50}) {
    const auto top = idx.top_k(team, d.store(), k, std::nullopt);
    ASSERT_EQ(top.size(), std::min(k, live.size())) << "k=" << k;
    for (std::size_t i = 0; i < top.size(); ++i) {
      EXPECT_EQ(top[i].id, live[i]) << "k=" << k << " i=" << i;
      EXPECT_EQ(top[i].w, d.store().edge(live[i]).w);
    }
  }

  // With a cluster threshold only cross-cluster edges qualify.
  const double lambda = 0.3;
  std::vector<VertexId> labels;
  (void)idx.cut(lambda, &labels);
  std::vector<EdgeId> crossing;
  for (const EdgeId id : live) {
    const WEdge& e = d.store().edge(id);
    if (labels[e.u] != labels[e.v]) crossing.push_back(id);
  }
  const auto top = idx.top_k(team, d.store(), 15, lambda);
  ASSERT_EQ(top.size(), std::min<std::size_t>(15, crossing.size()));
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].id, crossing[i]) << "i=" << i;
  }
}

TEST(QueryIndex, LabelsDigestIsOrderSensitive) {
  const std::vector<VertexId> a{0, 0, 1, 1};
  const std::vector<VertexId> b{0, 1, 0, 1};
  const std::vector<VertexId> c{0, 0, 1, 1};
  EXPECT_EQ(query::labels_digest(std::span<const VertexId>(a)),
            query::labels_digest(std::span<const VertexId>(c)));
  EXPECT_NE(query::labels_digest(std::span<const VertexId>(a)),
            query::labels_digest(std::span<const VertexId>(b)));
}

}  // namespace
