// End-to-end over the real AF_UNIX transport: UdsServer + UdsClient against
// a live ServiceCore — concurrent clients on one session, pipelined write
// coalescing, stale-socket recovery, wire shutdown.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/error.hpp"
#include "serve/service_core.hpp"
#include "serve/uds_client.hpp"
#include "serve/uds_server.hpp"

namespace {

using namespace smp;
using namespace smp::serve;

std::string unique_socket_path(const char* tag) {
  return "/tmp/smpmsf_test_" + std::to_string(::getpid()) + "_" + tag +
         ".sock";
}

TEST(ServeSocket, RequestResponseRoundTrip) {
  const std::string path = unique_socket_path("rt");
  ServiceCore core;
  UdsServer server(core, {.socket_path = path});
  server.start();
  {
    UdsClient c(path);
    EXPECT_EQ(c.request("ping").front(), "ok");
    EXPECT_EQ(c.request("open g n=5").front(),
              "ok weight=0 trees=5 forest=0 live=0");
    EXPECT_EQ(c.request("insert g 1 2 1.5").front(),
              "ok applied=1 coalesced=1 weight=1.5 trees=4 forest=1 live=1");
    EXPECT_EQ(c.request("connected g 1 2").front(), "ok connected=1");
    EXPECT_EQ(c.request("connected g 1 5").front(), "ok connected=0");
    const std::vector<std::string> edges = c.request("edges g");
    ASSERT_EQ(edges.size(), 2u);
    EXPECT_EQ(edges[0], "ok count=1 total=1");
    EXPECT_EQ(edges[1], "e 1 2 1.5");
    const std::vector<std::string> stats = c.request("stats");
    ASSERT_EQ(stats.size(), 2u);
    EXPECT_NE(stats[1].find("\"apply_batches\""), std::string::npos);
    // Malformed lines answer err without killing the connection.
    EXPECT_EQ(c.request("bogus verb").front().rfind("err invalid_input", 0),
              0u);
    EXPECT_EQ(c.request("ping").front(), "ok");
    EXPECT_EQ(c.request("quit").front(), "ok");
  }
  server.stop();
  core.shutdown();
}

TEST(ServeSocket, ConcurrentClientsShareOneSession) {
  const std::string path = unique_socket_path("cc");
  ServeOptions opts;
  opts.dispatchers = 4;
  opts.coalesce_window_s = 0.02;
  ServiceCore core(opts);
  UdsServer server(core, {.socket_path = path});
  server.start();
  {
    UdsClient admin(path);
    ASSERT_EQ(admin.request("open g n=300").front().rfind("ok", 0), 0u);

    constexpr int kClients = 4;
    constexpr int kWritesEach = 10;
    std::vector<std::thread> clients;
    std::vector<int> failures(kClients, 0);
    for (int ci = 0; ci < kClients; ++ci) {
      clients.emplace_back([&, ci] {
        try {
          UdsClient c(path);
          for (int i = 0; i < kWritesEach; ++i) {
            const int u = ci * kWritesEach + i + 1;  // 1-based, unique per op
            const std::string resp =
                c.request("insert g " + std::to_string(u) + " " +
                          std::to_string(u + 1) + " 1.0")
                    .front();
            if (resp.rfind("ok applied=1", 0) != 0) {
              ++failures[static_cast<std::size_t>(ci)];
            }
            if (c.request("weight g").front().rfind("ok", 0) != 0) {
              ++failures[static_cast<std::size_t>(ci)];
            }
          }
        } catch (const Error&) {
          ++failures[static_cast<std::size_t>(ci)];
        }
      });
    }
    for (auto& t : clients) t.join();
    for (int ci = 0; ci < kClients; ++ci) {
      EXPECT_EQ(failures[static_cast<std::size_t>(ci)], 0) << "client " << ci;
    }
    const std::string weight = admin.request("weight g").front();
    EXPECT_NE(weight.find("live=40"), std::string::npos) << weight;
    // Interleaved clients + a coalesce window: the service must have merged
    // at least some of the 40 writes.
    EXPECT_LT(core.metrics().apply_batches.load(), 40u);
  }
  server.stop();
  core.shutdown();
}

TEST(ServeSocket, PipelinedBurstCoalesces) {
  const std::string path = unique_socket_path("pl");
  ServeOptions opts;
  opts.dispatchers = 4;
  opts.coalesce_window_s = 0.02;
  ServiceCore core(opts);
  UdsServer server(core, {.socket_path = path});
  server.start();
  {
    UdsClient c(path);
    ASSERT_EQ(c.request("open g n=50").front().rfind("ok", 0), 0u);
    // One write() carrying many lines: the connection submits them all
    // before reading responses, so they coalesce even from one client.
    constexpr int kBurst = 16;
    std::vector<std::string> lines;
    for (int i = 1; i <= kBurst; ++i) {
      lines.push_back("insert g " + std::to_string(i) + " " +
                      std::to_string(i + 1) + " 2.5");
      c.send_line(lines.back());
    }
    std::size_t max_coalesced = 0;
    for (const std::string& line : lines) {
      const std::string resp = c.read_response(line).front();
      ASSERT_EQ(resp.rfind("ok applied=1 coalesced=", 0), 0u) << resp;
      max_coalesced =
          std::max(max_coalesced, static_cast<std::size_t>(std::strtoull(
                                      resp.c_str() + 23, nullptr, 10)));
    }
    EXPECT_GE(max_coalesced, 2u);
  }
  server.stop();
  core.shutdown();
}

TEST(ServeSocket, StaleSocketFileIsReclaimedLiveOneIsNot) {
  const std::string path = unique_socket_path("st");
  // Simulate a crashed daemon: bind the path, then close the socket without
  // unlinking — the file stays but nobody accepts on it.
  {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    ASSERT_LT(path.size(), sizeof addr.sun_path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str());
    ASSERT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof addr),
              0);
    ::close(fd);
  }
  ServiceCore core;
  UdsServer server(core, {.socket_path = path});
  server.start();  // must detect the stale file and reclaim the path
  {
    UdsClient c(path);
    EXPECT_EQ(c.request("ping").front(), "ok");
  }
  // A second daemon on the now-live path must refuse instead of stealing it.
  ServiceCore core2;
  UdsServer server2(core2, {.socket_path = path});
  EXPECT_THROW(server2.start(), Error);
  server.stop();
  core.shutdown();
  core2.shutdown();
}

TEST(ServeSocket, WireShutdownWakesWait) {
  const std::string path = unique_socket_path("sd");
  ServiceCore core;
  UdsServer server(core, {.socket_path = path});
  server.start();
  std::thread waiter([&] { server.wait(); });
  {
    UdsClient c(path);
    EXPECT_EQ(c.request("shutdown").front(), "ok");
  }
  waiter.join();  // the verb must unblock wait()
  server.stop();
  core.shutdown();
}

}  // namespace
