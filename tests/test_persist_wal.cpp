// WAL framing: CRC32C vectors, record round-trips, torn-tail detection,
// and the corruption cases recovery must refuse to guess past.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "persist/crc32c.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"

namespace {

using namespace smp;
using namespace smp::persist;

/// Unique scratch directory per test, removed on scope exit.
struct TempDir {
  std::string path;
  TempDir() {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("smpmsf_wal_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return path + "/" + name;
  }
};

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

WalRecord sample_record(std::uint64_t lsn) {
  WalRecord rec;
  rec.lsn = lsn;
  rec.insertions = {{0, 1, 1.5}, {2, 3, -0.25}};
  rec.deletions = {7, 42};
  rec.idem_ids = {"req-a", "req-b"};
  return rec;
}

TEST(Crc32c, KnownVectors) {
  // The canonical CRC32C check value for the bytes "123456789".
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  // Chaining across calls equals one pass over the concatenation.
  const std::uint32_t part = crc32c("12345", 5);
  EXPECT_EQ(crc32c("6789", 4, part), 0xE3069283u);
}

TEST(Wal, FsyncPolicyParsing) {
  EXPECT_EQ(parse_fsync_policy("always"), FsyncPolicy::kAlways);
  EXPECT_EQ(parse_fsync_policy("interval"), FsyncPolicy::kInterval);
  EXPECT_EQ(parse_fsync_policy("none"), FsyncPolicy::kNone);
  EXPECT_THROW((void)parse_fsync_policy("sometimes"), Error);
  EXPECT_EQ(to_string(FsyncPolicy::kAlways), "always");
}

TEST(Wal, RecordRoundTrip) {
  TempDir dir;
  const std::string path = dir.file("wal-0000000000000001.log");
  std::string bytes = encode_record(sample_record(1));
  WalRecord compact_rec;
  compact_rec.lsn = 2;
  compact_rec.compact = true;
  bytes += encode_record(compact_rec);
  write_file(path, bytes);

  const WalScan scan = scan_wal(path, 1);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, bytes.size());
  ASSERT_EQ(scan.records.size(), 2u);
  const WalRecord& r = scan.records[0];
  EXPECT_EQ(r.lsn, 1u);
  EXPECT_FALSE(r.compact);
  ASSERT_EQ(r.insertions.size(), 2u);
  EXPECT_EQ(r.insertions[0].u, 0u);
  EXPECT_EQ(r.insertions[0].v, 1u);
  EXPECT_DOUBLE_EQ(r.insertions[0].w, 1.5);
  EXPECT_DOUBLE_EQ(r.insertions[1].w, -0.25);
  EXPECT_EQ(r.deletions, (std::vector<graph::EdgeId>{7, 42}));
  EXPECT_EQ(r.idem_ids, (std::vector<std::string>{"req-a", "req-b"}));
  EXPECT_TRUE(scan.records[1].compact);
  EXPECT_EQ(scan.records[1].lsn, 2u);
}

TEST(Wal, MissingAndEmptyFilesAreValidEmptySegments) {
  TempDir dir;
  const WalScan missing = scan_wal(dir.file("nope.log"), 1);
  EXPECT_TRUE(missing.records.empty());
  EXPECT_FALSE(missing.torn_tail);
  EXPECT_EQ(missing.valid_bytes, 0u);

  write_file(dir.file("empty.log"), "");
  const WalScan empty = scan_wal(dir.file("empty.log"), 1);
  EXPECT_TRUE(empty.records.empty());
  EXPECT_FALSE(empty.torn_tail);
}

TEST(Wal, TornTailTruncatesAtEveryCutPoint) {
  TempDir dir;
  const std::string first = encode_record(sample_record(1));
  const std::string second = encode_record(sample_record(2));
  const std::string whole = first + second;
  // Cut the second record anywhere — mid-header, mid-payload, one byte
  // short — and the scan must return exactly record 1 plus a torn tail.
  for (std::size_t cut = first.size() + 1; cut < whole.size(); ++cut) {
    const std::string path = dir.file("torn.log");
    write_file(path, whole.substr(0, cut));
    const WalScan scan = scan_wal(path, 1);
    EXPECT_TRUE(scan.torn_tail) << "cut at " << cut;
    EXPECT_EQ(scan.valid_bytes, first.size()) << "cut at " << cut;
    ASSERT_EQ(scan.records.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(scan.records[0].lsn, 1u);
  }
}

TEST(Wal, BitFlippedPayloadIsCorruptionNotATear) {
  TempDir dir;
  std::string bytes = encode_record(sample_record(1)) +
                      encode_record(sample_record(2));
  bytes[bytes.size() - 3] ^= 0x40;  // inside the second record's payload
  const std::string path = dir.file("flip.log");
  write_file(path, bytes);
  try {
    (void)scan_wal(path, 1);
    FAIL() << "corrupt record must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
    // Diagnostics name the byte offset so the runbook's triage works.
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }
}

TEST(Wal, DuplicateAndGappedLsnAreCorruption) {
  TempDir dir;
  {
    const std::string path = dir.file("dup.log");
    write_file(path,
               encode_record(sample_record(1)) + encode_record(sample_record(1)));
    try {
      (void)scan_wal(path, 1);
      FAIL() << "duplicate LSN must throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
      EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
          << e.what();
    }
  }
  {
    const std::string path = dir.file("gap.log");
    write_file(path,
               encode_record(sample_record(1)) + encode_record(sample_record(3)));
    EXPECT_THROW((void)scan_wal(path, 1), Error);
  }
  {
    // First record does not carry the expected base LSN.
    const std::string path = dir.file("base.log");
    write_file(path, encode_record(sample_record(5)));
    EXPECT_THROW((void)scan_wal(path, 1), Error);
    // expected_lsn = 0 accepts any start.
    EXPECT_EQ(scan_wal(path, 0).records.size(), 1u);
  }
}

TEST(Snapshot, RoundTripAndValidation) {
  TempDir dir;
  dynamic::EdgeStore store(8);
  store.insert(0, 1, 1.0);
  const graph::EdgeId dead = store.insert(1, 2, 2.0);
  store.insert(2, 3, 3.0);
  store.erase(dead);  // tombstones must survive the round trip
  const std::vector<graph::EdgeId> forest = {0, 2};
  const std::vector<std::pair<std::string, std::uint64_t>> idem = {
      {"a", 1}, {"b", 2}};

  write_snapshot_file(dir.path, 7, store, forest, idem);
  ASSERT_EQ(list_snapshots(dir.path), (std::vector<std::uint64_t>{7}));

  const SnapshotBody body = load_snapshot_file(snapshot_path(dir.path, 7));
  EXPECT_EQ(body.lsn, 7u);
  EXPECT_EQ(body.store.size(), 3u);
  EXPECT_EQ(body.store.num_live(), 2u);
  EXPECT_EQ(body.store.num_vertices(), 8u);
  EXPECT_EQ(body.forest, forest);
  EXPECT_EQ(body.idem, idem);

  // A flipped bit anywhere fails the trailer CRC.
  const std::string path = snapshot_path(dir.path, 7);
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  fs.seekp(12);
  char c = 0;
  fs.seekg(12);
  fs.read(&c, 1);
  c = static_cast<char>(c ^ 0x01);
  fs.seekp(12);
  fs.write(&c, 1);
  fs.close();
  EXPECT_THROW((void)load_snapshot_file(path), Error);
}

TEST(Snapshot, RetentionKeepsNewestAndSweepsTmp) {
  TempDir dir;
  dynamic::EdgeStore store(4);
  for (std::uint64_t lsn : {3u, 1u, 9u, 5u}) {
    write_snapshot_file(dir.path, lsn, store, {}, {});
  }
  write_file(dir.file("snap-00000000000000ff.snap.tmp"), "half-written");
  EXPECT_EQ(list_snapshots(dir.path),
            (std::vector<std::uint64_t>{9, 5, 3, 1}));
  retain_snapshots(dir.path, 2);
  EXPECT_EQ(list_snapshots(dir.path), (std::vector<std::uint64_t>{9, 5}));
  EXPECT_FALSE(std::filesystem::exists(dir.file("snap-00000000000000ff.snap.tmp")));
}

}  // namespace
