// TCP binary transport end-to-end over loopback: request/response against a
// live ServiceCore, pipelining with out-of-order correlation ids, batch
// frames, and the malformed-input contract — corrupt frames are answered
// with protocol errors and the connection survives; only an unresynchable
// length prefix closes it, gracefully.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "net/tcp_client.hpp"
#include "net/tcp_server.hpp"
#include "serve/service_core.hpp"

namespace {

using namespace smp;
using namespace smp::graph;
using namespace smp::net;
using namespace smp::serve;

Request make(Op op, std::string session = {}) {
  Request r;
  r.op = op;
  r.session = std::move(session);
  return r;
}

/// A raw loopback connection for sending hand-crafted (including malformed)
/// byte sequences that TcpClient would never emit.
class RawConn {
 public:
  explicit RawConn(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool ok() const { return fd_ >= 0; }

  void send_bytes(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Reads until one whole response frame decodes (or EOF → nullopt-like
  /// failure via `got`).
  bool read_response(BinResponse& out) {
    for (;;) {
      std::string_view payload;
      std::string error;
      const DecodeStatus st = try_read_frame(acc_, off_, payload, error);
      if (st == DecodeStatus::kOk) {
        std::vector<BinResponse> resps;
        if (!decode_response_payload(payload, resps, error) || resps.empty()) {
          return false;
        }
        out = std::move(resps.front());
        return true;
      }
      if (st != DecodeStatus::kNeedMore) return false;
      char buf[4096];
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n <= 0) return false;
      acc_.append(buf, static_cast<std::size_t>(n));
    }
  }

  /// True when the peer has closed (EOF after draining pending bytes).
  bool peer_closed() {
    char buf[256];
    for (;;) {
      const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

 private:
  int fd_ = -1;
  std::string acc_;
  std::size_t off_ = 0;
};

std::string frame_of(const BinRequest& r) {
  std::string msg;
  encode_request(msg, r);
  std::string wire;
  frame_message(wire, msg);
  return wire;
}

class NetTcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeOptions opts;
    opts.dispatchers = 2;
    core_ = std::make_unique<ServiceCore>(opts);
    server_ = std::make_unique<TcpServer>(*core_, TcpServerOptions{.port = 0});
    server_->start();
    port_ = server_->port();
    ASSERT_NE(port_, 0);
  }

  void TearDown() override {
    server_->stop();
    core_->shutdown();
  }

  std::unique_ptr<ServiceCore> core_;
  std::unique_ptr<TcpServer> server_;
  std::uint16_t port_ = 0;
};

TEST_F(NetTcpTest, EndToEndRequestResponse) {
  TcpClient client("127.0.0.1", port_);

  Request open = make(Op::kOpen, "g");
  open.num_vertices = 6;
  EXPECT_EQ(client.call(open).status, Status::kOk);

  Request ins = make(Op::kInsert, "g");
  ins.insertions = {{0, 1, 1.5}, {1, 2, 0.5}};
  const Response r = client.call(ins);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_TRUE(r.applied);
  EXPECT_DOUBLE_EQ(r.weight, 2.0);
  EXPECT_GE(r.epoch, 1u);  // MVCC epoch the write committed as

  Request conn = make(Op::kConnected, "g");
  conn.u = 0;
  conn.v = 2;
  EXPECT_TRUE(client.call(conn).connected);

  Request pm = make(Op::kPathMax, "g");
  pm.u = 0;
  pm.v = 2;
  const Response pmr = client.call(pm);
  EXPECT_EQ(pmr.status, Status::kOk);
  EXPECT_TRUE(pmr.pathmax_found);
  EXPECT_DOUBLE_EQ(pmr.pathmax_w, 1.5);

  const Response health = client.call(make(Op::kHealth));
  EXPECT_EQ(health.status, Status::kOk);
  ASSERT_FALSE(health.listeners.empty());
  EXPECT_EQ(health.listeners[0].rfind("tcp:", 0), 0u);
  EXPECT_FALSE(health.shard_depths.empty());

  // kSnapshot is in-process only: over the wire it must be rejected, not
  // serialized.
  EXPECT_NE(client.call(make(Op::kSnapshot, "g")).status, Status::kOk);

  client.quit();
}

TEST_F(NetTcpTest, PipelinedResponsesCorrelateById) {
  TcpClient setup("127.0.0.1", port_);
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 32;
  ASSERT_EQ(setup.call(open).status, Status::kOk);

  TcpClient client("127.0.0.1", port_);
  // A write burst interleaved with reads, all pipelined before any recv:
  // responses come back in completion order (reads run inline on the I/O
  // thread, writes queue through the shard), so arrival order is NOT send
  // order — the correlation id is what pairs them up.
  std::vector<std::uint64_t> write_ids;
  std::vector<std::uint64_t> read_ids;
  for (int i = 0; i < 10; ++i) {
    Request ins = make(Op::kInsert, "g");
    ins.insertions = {
        {static_cast<VertexId>(i), static_cast<VertexId>(i + 1), 1.0}};
    write_ids.push_back(client.send(ins));
    read_ids.push_back(client.send(make(Op::kWeight, "g")));
  }
  std::set<std::uint64_t> expect(write_ids.begin(), write_ids.end());
  expect.insert(read_ids.begin(), read_ids.end());
  ASSERT_EQ(expect.size(), 20u);

  bool out_of_order = false;
  std::uint64_t prev = 0;
  while (!expect.empty()) {
    const BinResponse r = client.recv();
    ASSERT_EQ(expect.erase(r.id), 1u) << "unexpected id " << r.id;
    EXPECT_EQ(r.resp.status, Status::kOk);
    if (r.id < prev) out_of_order = true;
    prev = r.id;
    if (std::find(write_ids.begin(), write_ids.end(), r.id) !=
        write_ids.end()) {
      EXPECT_TRUE(r.resp.applied);
    }
  }
  // Not asserted: out_of_order depends on scheduling.  It is recorded so a
  // debugger can see the pipelining actually exercised reordering.
  (void)out_of_order;

  // Batch frame: one syscall, many requests, every id answered.
  std::vector<Request> batch;
  for (int i = 0; i < 8; ++i) batch.push_back(make(Op::kWeight, "g"));
  const std::vector<std::uint64_t> ids = client.send_batch(batch);
  std::set<std::uint64_t> want(ids.begin(), ids.end());
  ASSERT_EQ(want.size(), 8u);
  while (!want.empty()) {
    const BinResponse r = client.recv();
    EXPECT_EQ(r.resp.status, Status::kOk);
    EXPECT_EQ(want.erase(r.id), 1u);
  }
  client.quit();
}

TEST_F(NetTcpTest, CorruptFrameIsAnsweredAndConnectionSurvives) {
  RawConn raw(port_);
  ASSERT_TRUE(raw.ok());

  // A CRC-corrupt frame: answered with a correlation-id-0 protocol error...
  BinRequest ping;
  ping.id = 11;
  ping.req.op = Op::kPing;
  std::string wire = frame_of(ping);
  wire[wire.size() - 1] = static_cast<char>(wire.back() ^ 0x01);
  raw.send_bytes(wire);
  BinResponse err;
  ASSERT_TRUE(raw.read_response(err));
  EXPECT_EQ(err.id, 0u);
  EXPECT_NE(err.resp.status, Status::kOk);
  EXPECT_FALSE(err.resp.detail.empty());

  // ...and the connection is still usable: a valid request on the same
  // socket gets a real answer.
  BinRequest ok;
  ok.id = 12;
  ok.req.op = Op::kPing;
  raw.send_bytes(frame_of(ok));
  BinResponse pong;
  ASSERT_TRUE(raw.read_response(pong));
  EXPECT_EQ(pong.id, 12u);
  EXPECT_EQ(pong.resp.status, Status::kOk);

  // A well-framed but undecodable payload (unknown kind byte) likewise.
  std::string junk_payload(1, '\x6e');
  junk_payload += "garbage";
  std::string junk;
  frame_message(junk, junk_payload);
  // frame_message computes the CRC over the payload, so this frame is
  // delimited and checksummed — the failure is in payload decode.
  raw.send_bytes(junk);
  BinResponse junk_err;
  ASSERT_TRUE(raw.read_response(junk_err));
  EXPECT_EQ(junk_err.id, 0u);
  EXPECT_NE(junk_err.resp.status, Status::kOk);

  BinRequest again;
  again.id = 13;
  again.req.op = Op::kPing;
  raw.send_bytes(frame_of(again));
  BinResponse pong2;
  ASSERT_TRUE(raw.read_response(pong2));
  EXPECT_EQ(pong2.id, 13u);
  EXPECT_EQ(pong2.resp.status, Status::kOk);
}

TEST_F(NetTcpTest, OversizedLengthPrefixClosesAfterErrorResponse) {
  RawConn raw(port_);
  ASSERT_TRUE(raw.ok());
  std::string wire;
  const std::uint32_t bad_len = kMaxFrame + 7;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((bad_len >> (8 * i)) & 0xff));
  }
  wire.append(4, '\0');
  wire.append("trailing bytes the server must never try to frame");
  raw.send_bytes(wire);

  // The contract: an error response first, then EOF — never a silent drop,
  // never unbounded buffering.
  BinResponse err;
  ASSERT_TRUE(raw.read_response(err));
  EXPECT_EQ(err.id, 0u);
  EXPECT_NE(err.resp.status, Status::kOk);
  EXPECT_TRUE(raw.peer_closed());
}

TEST_F(NetTcpTest, FrameSplitAcrossWritesIsReassembled) {
  RawConn raw(port_);
  ASSERT_TRUE(raw.ok());
  BinRequest ping;
  ping.id = 21;
  ping.req.op = Op::kPing;
  const std::string wire = frame_of(ping);
  // Dribble the frame one byte at a time; kNeedMore must buffer, not error.
  for (char c : wire) {
    raw.send_bytes(std::string(1, c));
  }
  BinResponse pong;
  ASSERT_TRUE(raw.read_response(pong));
  EXPECT_EQ(pong.id, 21u);
  EXPECT_EQ(pong.resp.status, Status::kOk);
}

TEST_F(NetTcpTest, ConcurrentClientsShareOneCore) {
  {
    TcpClient setup("127.0.0.1", port_);
    Request open = make(Op::kOpen, "g");
    open.num_vertices = 64;
    ASSERT_EQ(setup.call(open).status, Status::kOk);
    setup.quit();
  }
  constexpr int kClients = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      try {
        TcpClient c("127.0.0.1", port_);
        for (int i = 0; i < 20; ++i) {
          Request ins = make(Op::kInsert, "g");
          const auto u = static_cast<VertexId>((t * 20 + i) % 63);
          ins.insertions = {{u, 63, 1.0 + i}};
          if (!c.call(ins).ok()) ++failures;
          if (!c.call(make(Op::kWeight, "g")).ok()) ++failures;
        }
        c.quit();
      } catch (...) {
        ++failures;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // Every client saw a consistent forest; final state sanity-checks.
  TcpClient check("127.0.0.1", port_);
  const Response w = check.call(make(Op::kWeight, "g"));
  EXPECT_EQ(w.status, Status::kOk);
  EXPECT_GT(w.forest_edges, 0u);
  check.quit();
}

TEST_F(NetTcpTest, ShutdownControlWakesTheServer) {
  std::thread waiter([&] { server_->wait(); });
  {
    TcpClient client("127.0.0.1", port_);
    client.shutdown();
  }
  waiter.join();  // returns only when the shutdown control was processed
}

}  // namespace
