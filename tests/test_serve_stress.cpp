// Serving-layer determinism under concurrency: writers hammer one session
// through the ServiceCore while readers take atomic snapshots — and every
// snapshot's forest must be bit-identical (edge ids and deterministically
// summed weight) to a from-scratch solve of that snapshot's live edge set.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <queue>
#include <span>
#include <string>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/dendrogram.hpp"
#include "core/msf.hpp"
#include "pprim/rng.hpp"
#include "query/forest_index.hpp"
#include "serve/service_core.hpp"

namespace {

using namespace smp;
using namespace smp::graph;
using namespace smp::serve;

/// Solves the snapshot's live graph from scratch with the same backend and
/// checks bit-identity against the forest the service maintained.
void check_snapshot(const SnapshotData& snap, const core::MsfOptions& opts) {
  const MsfResult ref = core::minimum_spanning_forest_of_candidates(
      snap.live, snap.live_ids, opts);
  std::vector<EdgeId> ref_forest = ref.edge_ids;
  std::sort(ref_forest.begin(), ref_forest.end());
  ASSERT_EQ(snap.forest_ids, ref_forest);

  std::unordered_map<EdgeId, Weight> weight_of;
  weight_of.reserve(snap.live_ids.size());
  for (std::size_t i = 0; i < snap.live_ids.size(); ++i) {
    weight_of[snap.live_ids[i]] = snap.live.edges[i].w;
  }
  Weight ref_weight = 0;
  for (const EdgeId id : snap.forest_ids) ref_weight += weight_of.at(id);
  ASSERT_EQ(snap.weight, ref_weight);
  ASSERT_EQ(snap.trees, ref.num_trees);
}

TEST(ServeStress, EverySnapshotIsBitIdenticalToScratch) {
  constexpr VertexId kN = 150;
  ServeOptions opts;
  opts.msf.threads = 2;
  opts.dispatchers = 4;
  opts.compact_min_slots = 256;  // let compaction fire mid-stress too
  ServiceCore svc(opts);

  Request open;
  open.op = Op::kOpen;
  open.session = "g";
  open.num_vertices = kN;
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 40;
  constexpr int kReaders = 2;
  std::atomic<bool> writers_done{false};
  std::atomic<int> write_failures{0};
  std::atomic<int> snapshots_checked{0};

  std::vector<std::thread> threads;
  for (int wi = 0; wi < kWriters; ++wi) {
    threads.emplace_back([&, wi] {
      Rng rng(1000 + static_cast<std::uint64_t>(wi));
      for (int i = 0; i < kOpsPerWriter; ++i) {
        Request req;
        req.session = "g";
        if (rng.next_below(3) != 0) {
          req.op = Op::kInsert;
          for (std::uint64_t k = 0; k < 1 + rng.next_below(4); ++k) {
            const auto u = static_cast<VertexId>(rng.next_below(kN));
            auto v = static_cast<VertexId>(rng.next_below(kN - 1));
            if (v >= u) ++v;
            const Weight w = (rng.next_below(4) == 0) ? 0.5 : rng.next_double();
            req.insertions.push_back(WEdge{u, v, w});
          }
        } else {
          // Delete by endpoints picked from a fresh snapshot; a concurrent
          // writer may win the race for the same canonical edge, in which
          // case kInvalidInput is the contract, not a failure.
          Request snap_req;
          snap_req.op = Op::kSnapshot;
          snap_req.session = "g";
          const Response snap = svc.call(snap_req);
          if (!snap.ok() || snap.snapshot->live.num_edges() == 0) continue;
          const auto& edges = snap.snapshot->live.edges;
          const auto& e = edges[static_cast<std::size_t>(
              rng.next_below(edges.size()))];
          req.op = Op::kDelete;
          req.deletions.emplace_back(e.u, e.v);
        }
        const Response r = svc.call(req);
        if (!r.ok() &&
            !(req.op == Op::kDelete && r.status == Status::kInvalidInput)) {
          ++write_failures;
        }
      }
    });
  }
  for (int ri = 0; ri < kReaders; ++ri) {
    threads.emplace_back([&] {
      while (!writers_done.load(std::memory_order_acquire)) {
        Request req;
        req.op = Op::kSnapshot;
        req.session = "g";
        const Response r = svc.call(req);
        if (!r.ok()) continue;
        ASSERT_NE(r.snapshot, nullptr);
        check_snapshot(*r.snapshot, opts.msf);
        ++snapshots_checked;
      }
    });
  }
  for (int wi = 0; wi < kWriters; ++wi) threads[static_cast<std::size_t>(wi)].join();
  writers_done.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(write_failures.load(), 0);
  EXPECT_GT(snapshots_checked.load(), 0);

  // Final state must also be bit-identical, via one last snapshot.
  Request req;
  req.op = Op::kSnapshot;
  req.session = "g";
  const Response last = svc.call(req);
  ASSERT_TRUE(last.ok());
  check_snapshot(*last.snapshot, opts.msf);
  svc.shutdown();
}

/// Brute-force reference for one snapshot's query answers, computed from a
/// *scratch solve* of the snapshot's live graph (independent of the forest
/// the service maintained and of the ForestIndex skip tables).
struct QueryReference {
  VertexId n = 0;
  std::unordered_map<EdgeId, WEdge> edge_of;              ///< store id -> edge
  std::vector<std::vector<std::pair<VertexId, EdgeId>>> adj;  ///< forest

  QueryReference(const SnapshotData& snap, const core::MsfOptions& opts)
      : n(snap.live.num_vertices),
        adj(snap.live.num_vertices),
        // forest_ is declared before dend so sorted_forest may fill it here.
        dend(snap.live.num_vertices,
             sorted_forest(snap, core::minimum_spanning_forest_of_candidates(
                                     snap.live, snap.live_ids, opts))) {
    edge_of.reserve(snap.live_ids.size());
    for (std::size_t i = 0; i < snap.live_ids.size(); ++i) {
      edge_of[snap.live_ids[i]] = snap.live.edges[i];
    }
    // The dendrogram ctor above consumed the scratch forest; rebuild the
    // adjacency from the same sorted edge set for pathmax walks.
    for (const auto& [id, e] : forest_) {
      adj[e.u].push_back({e.v, id});
      adj[e.v].push_back({e.u, id});
    }
  }

  /// BFS bottleneck on the scratch forest: <found, edge id, weight>.
  [[nodiscard]] std::tuple<bool, EdgeId, Weight> path_max(VertexId u,
                                                          VertexId v) const {
    std::vector<VertexId> from(n, kInvalidVertex);
    std::vector<EdgeId> via(n, kInvalidEdge);
    std::queue<VertexId> q;
    q.push(u);
    from[u] = u;
    while (!q.empty()) {
      const VertexId x = q.front();
      q.pop();
      for (const auto& [y, id] : adj[x]) {
        if (from[y] != kInvalidVertex) continue;
        from[y] = x;
        via[y] = id;
        q.push(y);
      }
    }
    if (from[v] == kInvalidVertex) return {false, kInvalidEdge, 0};
    EdgeId best = kInvalidEdge;
    Weight bw = 0;
    bool has = false;
    for (VertexId x = v; x != u; x = from[x]) {
      const Weight w = edge_of.at(via[x]).w;
      if (!has || w > bw || (w == bw && via[x] > best)) {
        bw = w;
        best = via[x];
        has = true;
      }
    }
    return {true, best, bw};
  }

 private:
  std::vector<std::pair<EdgeId, WEdge>> forest_;

 public:
  core::Dendrogram dend;

 private:
  /// The scratch forest ascending by store id — the same edge order the
  /// ForestIndex feeds its dendrogram, so cut labels are comparable
  /// bit-for-bit.
  MsfResult sorted_forest(const SnapshotData& snap, const MsfResult& ref) {
    std::unordered_map<EdgeId, WEdge> by_id;
    by_id.reserve(snap.live_ids.size());
    for (std::size_t i = 0; i < snap.live_ids.size(); ++i) {
      by_id[snap.live_ids[i]] = snap.live.edges[i];
    }
    for (const EdgeId id : ref.edge_ids) forest_.push_back({id, by_id.at(id)});
    std::sort(forest_.begin(), forest_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    MsfResult out;
    for (const auto& [id, e] : forest_) {
      out.edges.push_back(e);
      out.edge_ids.push_back(id);
    }
    out.num_trees = ref.num_trees;
    return out;
  }
};

/// Checks one version-matched (snapshot, answers) pairing against brute
/// force.  Returns false when the answers were produced at a different
/// committed version than the snapshot (a write slipped in between) — the
/// caller retries rather than comparing across versions.
bool check_queries(ServiceCore& svc, const core::MsfOptions& opts,
                   const SnapshotData& snap, VertexId u, VertexId v) {
  Request q;
  q.session = "g";
  q.u = u;
  q.v = v;
  q.op = Op::kPathMax;
  const Response pm = svc.call(q);
  q.op = Op::kConn;
  const Response cn = svc.call(q);
  Request cutq;
  cutq.op = Op::kCut;
  cutq.session = "g";
  cutq.lambda = 0.5;
  cutq.has_lambda = true;
  const Response cut = svc.call(cutq);
  if (!pm.ok() || !cn.ok() || !cut.ok()) return false;
  if (pm.index_version != snap.version || cn.index_version != snap.version ||
      cut.index_version != snap.version) {
    return false;  // a concurrent write moved the committed state
  }

  const QueryReference ref(snap, opts);
  const auto [found, id, w] = ref.path_max(u, v);
  EXPECT_EQ(pm.pathmax_found, found);
  if (found) {
    EXPECT_EQ(pm.pathmax_id, id);
    EXPECT_EQ(pm.pathmax_w, w);
  }
  EXPECT_EQ(cn.connected, found);

  std::size_t ref_clusters = 0;
  const std::vector<VertexId> labels = ref.dend.cut_at(0.5, &ref_clusters);
  EXPECT_EQ(cut.clusters, ref_clusters);
  EXPECT_EQ(cut.cut_digest,
            query::labels_digest(std::span<const VertexId>(labels)));
  return true;
}

class ServeStressQueryP : public ::testing::TestWithParam<int> {};

TEST_P(ServeStressQueryP, ConcurrentQueriesMatchScratchRecomputation) {
  const int p = GetParam();
  constexpr VertexId kN = 100;
  ServeOptions opts;
  opts.msf.threads = p;
  opts.dispatchers = 4;
  ServiceCore svc(opts);

  Request open;
  open.op = Op::kOpen;
  open.session = "g";
  open.num_vertices = kN;
  ASSERT_EQ(svc.call(open).status, Status::kOk);
  {
    Request ins;
    ins.op = Op::kInsert;
    ins.session = "g";
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(kN));
      auto v = static_cast<VertexId>(rng.next_below(kN - 1));
      if (v >= u) ++v;
      ins.insertions.push_back(WEdge{u, v, rng.next_double()});
    }
    ASSERT_EQ(svc.call(ins).status, Status::kOk);
  }

  std::atomic<bool> writers_done{false};
  std::atomic<int> write_failures{0};
  std::atomic<int> verified{0};

  std::vector<std::thread> threads;
  for (int wi = 0; wi < 2; ++wi) {
    threads.emplace_back([&, wi] {
      Rng rng(500 + static_cast<std::uint64_t>(wi));
      for (int i = 0; i < 25; ++i) {
        Request ins;
        ins.op = Op::kInsert;
        ins.session = "g";
        const auto u = static_cast<VertexId>(rng.next_below(kN));
        auto v = static_cast<VertexId>(rng.next_below(kN - 1));
        if (v >= u) ++v;
        ins.insertions.push_back(WEdge{u, v, rng.next_double()});
        if (!svc.call(ins).ok()) ++write_failures;
      }
    });
  }
  for (int ri = 0; ri < 2; ++ri) {
    threads.emplace_back([&, ri] {
      Rng rng(900 + static_cast<std::uint64_t>(ri));
      while (!writers_done.load(std::memory_order_acquire)) {
        Request sr;
        sr.op = Op::kSnapshot;
        sr.session = "g";
        const Response snap = svc.call(sr);
        if (!snap.ok()) continue;
        const auto u = static_cast<VertexId>(rng.next_below(kN));
        auto v = static_cast<VertexId>(rng.next_below(kN - 1));
        if (v >= u) ++v;
        if (check_queries(svc, opts.msf, *snap.snapshot, u, v)) ++verified;
      }
    });
  }
  for (int wi = 0; wi < 2; ++wi) threads[static_cast<std::size_t>(wi)].join();
  writers_done.store(true, std::memory_order_release);
  for (std::size_t t = 2; t < threads.size(); ++t) threads[t].join();
  EXPECT_EQ(write_failures.load(), 0);

  // Quiesced state: pairings now always match, so verify a deterministic
  // spread of pairs definitively.
  Request sr;
  sr.op = Op::kSnapshot;
  sr.session = "g";
  const Response snap = svc.call(sr);
  ASSERT_TRUE(snap.ok());
  int final_verified = 0;
  for (VertexId u = 0; u < kN; u += 9) {
    const VertexId v = (u + 37) % kN;
    if (u == v) continue;
    if (check_queries(svc, opts.msf, *snap.snapshot, u, v)) ++final_verified;
  }
  EXPECT_GT(final_verified, 0);
  svc.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Threads, ServeStressQueryP,
                         ::testing::Values(1, 2, 4, 8));

TEST(ServeStress, MixedReadersAndWritersAcrossSessions) {
  ServeOptions opts;
  opts.dispatchers = 4;
  opts.coalesce_window_s = 0.005;
  ServiceCore svc(opts);
  for (const char* name : {"a", "b"}) {
    Request open;
    open.op = Op::kOpen;
    open.session = name;
    open.num_vertices = 60;
    ASSERT_EQ(svc.call(open).status, Status::kOk);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const std::string session = (t % 2 == 0) ? "a" : "b";
      Rng rng(77 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 30; ++i) {
        Request ins;
        ins.op = Op::kInsert;
        ins.session = session;
        const auto u = static_cast<VertexId>(rng.next_below(60));
        auto v = static_cast<VertexId>(rng.next_below(59));
        if (v >= u) ++v;
        ins.insertions.push_back(WEdge{u, v, rng.next_double()});
        if (!svc.call(ins).ok()) ++failures;
        Request w;
        w.op = Op::kWeight;
        w.session = session;
        if (!svc.call(w).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // 120 writes total; the coalescing window must have merged some.
  EXPECT_LT(svc.metrics().apply_batches.load(), 120u);
  svc.shutdown();
}

}  // namespace
