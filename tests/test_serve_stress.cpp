// Serving-layer determinism under concurrency: writers hammer one session
// through the ServiceCore while readers take atomic snapshots — and every
// snapshot's forest must be bit-identical (edge ids and deterministically
// summed weight) to a from-scratch solve of that snapshot's live edge set.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/msf.hpp"
#include "pprim/rng.hpp"
#include "serve/service_core.hpp"

namespace {

using namespace smp;
using namespace smp::graph;
using namespace smp::serve;

/// Solves the snapshot's live graph from scratch with the same backend and
/// checks bit-identity against the forest the service maintained.
void check_snapshot(const SnapshotData& snap, const core::MsfOptions& opts) {
  const MsfResult ref = core::minimum_spanning_forest_of_candidates(
      snap.live, snap.live_ids, opts);
  std::vector<EdgeId> ref_forest = ref.edge_ids;
  std::sort(ref_forest.begin(), ref_forest.end());
  ASSERT_EQ(snap.forest_ids, ref_forest);

  std::unordered_map<EdgeId, Weight> weight_of;
  weight_of.reserve(snap.live_ids.size());
  for (std::size_t i = 0; i < snap.live_ids.size(); ++i) {
    weight_of[snap.live_ids[i]] = snap.live.edges[i].w;
  }
  Weight ref_weight = 0;
  for (const EdgeId id : snap.forest_ids) ref_weight += weight_of.at(id);
  ASSERT_EQ(snap.weight, ref_weight);
  ASSERT_EQ(snap.trees, ref.num_trees);
}

TEST(ServeStress, EverySnapshotIsBitIdenticalToScratch) {
  constexpr VertexId kN = 150;
  ServeOptions opts;
  opts.msf.threads = 2;
  opts.dispatchers = 4;
  opts.compact_min_slots = 256;  // let compaction fire mid-stress too
  ServiceCore svc(opts);

  Request open;
  open.op = Op::kOpen;
  open.session = "g";
  open.num_vertices = kN;
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  constexpr int kWriters = 3;
  constexpr int kOpsPerWriter = 40;
  constexpr int kReaders = 2;
  std::atomic<bool> writers_done{false};
  std::atomic<int> write_failures{0};
  std::atomic<int> snapshots_checked{0};

  std::vector<std::thread> threads;
  for (int wi = 0; wi < kWriters; ++wi) {
    threads.emplace_back([&, wi] {
      Rng rng(1000 + static_cast<std::uint64_t>(wi));
      for (int i = 0; i < kOpsPerWriter; ++i) {
        Request req;
        req.session = "g";
        if (rng.next_below(3) != 0) {
          req.op = Op::kInsert;
          for (std::uint64_t k = 0; k < 1 + rng.next_below(4); ++k) {
            const auto u = static_cast<VertexId>(rng.next_below(kN));
            auto v = static_cast<VertexId>(rng.next_below(kN - 1));
            if (v >= u) ++v;
            const Weight w = (rng.next_below(4) == 0) ? 0.5 : rng.next_double();
            req.insertions.push_back(WEdge{u, v, w});
          }
        } else {
          // Delete by endpoints picked from a fresh snapshot; a concurrent
          // writer may win the race for the same canonical edge, in which
          // case kInvalidInput is the contract, not a failure.
          Request snap_req;
          snap_req.op = Op::kSnapshot;
          snap_req.session = "g";
          const Response snap = svc.call(snap_req);
          if (!snap.ok() || snap.snapshot->live.num_edges() == 0) continue;
          const auto& edges = snap.snapshot->live.edges;
          const auto& e = edges[static_cast<std::size_t>(
              rng.next_below(edges.size()))];
          req.op = Op::kDelete;
          req.deletions.emplace_back(e.u, e.v);
        }
        const Response r = svc.call(req);
        if (!r.ok() &&
            !(req.op == Op::kDelete && r.status == Status::kInvalidInput)) {
          ++write_failures;
        }
      }
    });
  }
  for (int ri = 0; ri < kReaders; ++ri) {
    threads.emplace_back([&] {
      while (!writers_done.load(std::memory_order_acquire)) {
        Request req;
        req.op = Op::kSnapshot;
        req.session = "g";
        const Response r = svc.call(req);
        if (!r.ok()) continue;
        ASSERT_NE(r.snapshot, nullptr);
        check_snapshot(*r.snapshot, opts.msf);
        ++snapshots_checked;
      }
    });
  }
  for (int wi = 0; wi < kWriters; ++wi) threads[static_cast<std::size_t>(wi)].join();
  writers_done.store(true, std::memory_order_release);
  for (std::size_t t = kWriters; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(write_failures.load(), 0);
  EXPECT_GT(snapshots_checked.load(), 0);

  // Final state must also be bit-identical, via one last snapshot.
  Request req;
  req.op = Op::kSnapshot;
  req.session = "g";
  const Response last = svc.call(req);
  ASSERT_TRUE(last.ok());
  check_snapshot(*last.snapshot, opts.msf);
  svc.shutdown();
}

TEST(ServeStress, MixedReadersAndWritersAcrossSessions) {
  ServeOptions opts;
  opts.dispatchers = 4;
  opts.coalesce_window_s = 0.005;
  ServiceCore svc(opts);
  for (const char* name : {"a", "b"}) {
    Request open;
    open.op = Op::kOpen;
    open.session = name;
    open.num_vertices = 60;
    ASSERT_EQ(svc.call(open).status, Status::kOk);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      const std::string session = (t % 2 == 0) ? "a" : "b";
      Rng rng(77 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < 30; ++i) {
        Request ins;
        ins.op = Op::kInsert;
        ins.session = session;
        const auto u = static_cast<VertexId>(rng.next_below(60));
        auto v = static_cast<VertexId>(rng.next_below(59));
        if (v >= u) ++v;
        ins.insertions.push_back(WEdge{u, v, rng.next_double()});
        if (!svc.call(ins).ok()) ++failures;
        Request w;
        w.op = Op::kWeight;
        w.session = session;
        if (!svc.call(w).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  // 120 writes total; the coalescing window must have merged some.
  EXPECT_LT(svc.metrics().apply_batches.load(), 120u);
  svc.shutdown();
}

}  // namespace
