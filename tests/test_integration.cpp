// Larger end-to-end runs: bigger graphs, full pipeline (generate → solve →
// validate → serialize → reload → re-solve).
#include <gtest/gtest.h>

#include <sstream>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "graph/validate.hpp"
#include "seq/seq_msf.hpp"
#include "seq/union_find.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(Integration, LargeRandomGraphAllAlgorithms) {
  const EdgeList g = random_graph(50000, 200000, 1);
  const auto ref = seq::kruskal_msf(g);
  const auto chk = validate_spanning_forest(g, ref.edges);
  ASSERT_TRUE(chk.ok) << chk.error;
  const auto ref_ids = test::sorted_ids(ref);
  for (const auto alg : core::kParallelAlgorithms) {
    const auto r = test::run_alg(g, alg, 4, 256);
    EXPECT_EQ(test::sorted_ids(r), ref_ids) << core::to_string(alg);
  }
}

TEST(Integration, LargeMeshAllAlgorithms) {
  const EdgeList g = mesh2d_p(300, 300, 0.6, 2);
  const auto ref_ids = test::sorted_ids(seq::kruskal_msf(g));
  for (const auto alg : core::kParallelAlgorithms) {
    EXPECT_EQ(test::sorted_ids(test::run_alg(g, alg, 4, 256)), ref_ids)
        << core::to_string(alg);
  }
}

TEST(Integration, LargeStructuredWorstCase) {
  const EdgeList g = structured_graph(0, 1 << 15, 3);
  const auto ref_ids = test::sorted_ids(seq::kruskal_msf(g));
  for (const auto alg : core::kParallelAlgorithms) {
    EXPECT_EQ(test::sorted_ids(test::run_alg(g, alg, 4, 256)), ref_ids)
        << core::to_string(alg);
  }
}

TEST(Integration, SerializeReloadResolve) {
  const EdgeList g = geometric_knn(5000, 6, 4);
  std::stringstream ss;
  write_dimacs(ss, g);
  const EdgeList h = read_dimacs(ss);
  const auto a = seq::kruskal_msf(g);
  const auto b = seq::kruskal_msf(h);
  EXPECT_EQ(test::sorted_ids(a), test::sorted_ids(b));
  EXPECT_DOUBLE_EQ(a.total_weight, b.total_weight);
}

TEST(Integration, ForestWeightIsMinimalAgainstRandomSpanningTrees) {
  // Sanity from the other side: the MSF weight never exceeds the weight of
  // any other spanning structure we can easily construct (BFS tree).
  const EdgeList g = random_graph(2000, 10000, 5);
  const auto msf = seq::kruskal_msf(g);

  // Build a BFS forest via union-find in edge order (arbitrary, not minimal).
  seq::UnionFind uf(g.num_vertices);
  double arbitrary_weight = 0;
  std::size_t arbitrary_edges = 0;
  for (const auto& e : g.edges) {
    if (uf.unite(e.u, e.v)) {
      arbitrary_weight += e.w;
      ++arbitrary_edges;
    }
  }
  ASSERT_EQ(arbitrary_edges, msf.edges.size());
  EXPECT_LE(msf.total_weight, arbitrary_weight);
}

TEST(Integration, NumTreesMatchesComponentCount) {
  const EdgeList g = random_graph(10000, 6000, 6);  // very sparse → fragmented
  const std::size_t comps = num_components(g);
  EXPECT_GT(comps, 1u);
  for (const auto alg : core::kParallelAlgorithms) {
    const auto r = test::run_alg(g, alg, 4, 128);
    EXPECT_EQ(r.num_trees, comps) << core::to_string(alg);
  }
}

TEST(Integration, RepeatedTeamsNoResourceLeak) {
  // Constructing/destroying many teams (each spawning threads) must be safe.
  const EdgeList g = random_graph(500, 1500, 7);
  const auto ref_ids = test::sorted_ids(seq::kruskal_msf(g));
  for (int i = 0; i < 25; ++i) {
    const auto r = test::run_alg(g, core::Algorithm::kBorFAL, 3);
    ASSERT_EQ(test::sorted_ids(r), ref_ids) << i;
  }
}

}  // namespace
