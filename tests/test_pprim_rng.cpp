// Rng determinism/quality basics and random permutations.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "pprim/permutation.hpp"
#include "pprim/rng.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(77);
  Rng f0 = base.fork(0);
  Rng f1 = base.fork(1);
  Rng f0b = Rng(77).fork(0);
  int same01 = 0;
  for (int i = 0; i < 100; ++i) {
    const auto a = f0.next();
    const auto b = f1.next();
    EXPECT_EQ(a, f0b.next());
    same01 += a == b;
  }
  EXPECT_LT(same01, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  for (const std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(10);
  std::vector<int> buckets(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.next_below(10)];
  for (const int b : buckets) {
    EXPECT_GT(b, kDraws / 10 - kDraws / 50);
    EXPECT_LT(b, kDraws / 10 + kDraws / 50);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(11);
  double mn = 1, mx = 0, sum = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    mn = std::min(mn, d);
    mx = std::max(mx, d);
    sum += d;
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

bool is_permutation_of_iota(const std::vector<std::uint32_t>& p) {
  std::vector<std::uint32_t> s = p;
  std::sort(s.begin(), s.end());
  for (std::uint32_t i = 0; i < s.size(); ++i) {
    if (s[i] != i) return false;
  }
  return true;
}

TEST(Permutation, SequentialIsValidAndSeeded) {
  const auto p1 = random_permutation(1000, 5);
  const auto p2 = random_permutation(1000, 5);
  const auto p3 = random_permutation(1000, 6);
  EXPECT_TRUE(is_permutation_of_iota(p1));
  EXPECT_EQ(p1, p2);
  EXPECT_NE(p1, p3);
  // Should not be the identity.
  std::vector<std::uint32_t> iota(1000);
  std::iota(iota.begin(), iota.end(), 0u);
  EXPECT_NE(p1, iota);
}

TEST(Permutation, ParallelIsValidAcrossThreadCounts) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadTeam team(threads);
    const auto p = random_permutation(team, 50000, 21);
    EXPECT_TRUE(is_permutation_of_iota(p)) << threads;
  }
}

TEST(Permutation, EdgeSizes) {
  EXPECT_TRUE(random_permutation(0, 1).empty());
  EXPECT_EQ(random_permutation(1, 1), std::vector<std::uint32_t>{0});
  ThreadTeam team(4);
  EXPECT_TRUE(is_permutation_of_iota(random_permutation(team, 2, 3)));
}

}  // namespace
