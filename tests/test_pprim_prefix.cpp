// Sequential and parallel prefix sums.
#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "pprim/prefix_sum.hpp"
#include "pprim/rng.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

std::vector<std::uint64_t> random_values(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = rng.next_below(1000);
  return v;
}

std::vector<std::uint64_t> reference_exclusive(const std::vector<std::uint64_t>& in) {
  std::vector<std::uint64_t> out(in.size());
  std::uint64_t run = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = run;
    run += in[i];
  }
  return out;
}

TEST(PrefixSum, SequentialMatchesReference) {
  for (const std::size_t n : {0u, 1u, 2u, 100u, 12345u}) {
    auto data = random_values(n, n);
    const auto expect = reference_exclusive(data);
    const std::uint64_t expect_total =
        std::accumulate(data.begin(), data.end(), std::uint64_t{0});
    const std::uint64_t total = exclusive_scan_seq(std::span<std::uint64_t>(data));
    EXPECT_EQ(total, expect_total);
    EXPECT_EQ(data, expect);
  }
}

class PrefixSumParallel : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSumParallel, MatchesReferenceAcrossSizes) {
  ThreadTeam team(GetParam());
  // Sizes straddling the serial-fallback threshold (1<<14).
  for (const std::size_t n : {0u, 1u, 1000u, (1u << 14) - 1, (1u << 14) + 1,
                              100000u, 262144u}) {
    auto data = random_values(n, n * 31 + 7);
    const auto expect = reference_exclusive(data);
    const std::uint64_t expect_total =
        expect.empty() ? 0 : expect.back() + data.back() - 0;
    auto orig = data;
    const std::uint64_t orig_total =
        std::accumulate(orig.begin(), orig.end(), std::uint64_t{0});
    const std::uint64_t total = exclusive_scan(team, std::span<std::uint64_t>(data));
    EXPECT_EQ(total, orig_total);
    (void)expect_total;
    EXPECT_EQ(data, expect) << "n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PrefixSumParallel, ::testing::Values(1, 2, 4, 8));

TEST(PrefixSum, WorksOnDoubles) {
  ThreadTeam team(4);
  std::vector<double> d(40000, 0.5);
  const double total = exclusive_scan(team, std::span<double>(d));
  EXPECT_DOUBLE_EQ(total, 20000.0);
  EXPECT_DOUBLE_EQ(d[0], 0.0);
  EXPECT_DOUBLE_EQ(d[39999], 19999.5);
}

}  // namespace
