// Properties of every graph generator family (§5.1 of the paper).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"
#include "graph/stats.hpp"

namespace {

using namespace smp::graph;

void expect_well_formed(const EdgeList& g) {
  for (const auto& e : g.edges) {
    ASSERT_LT(e.u, g.num_vertices);
    ASSERT_LT(e.v, g.num_vertices);
    ASSERT_NE(e.u, e.v);
  }
}

TEST(RandomGraph, ExactEdgeCountSimpleAndSeeded) {
  const EdgeList g = random_graph(1000, 5000, 3);
  EXPECT_EQ(g.num_vertices, 1000u);
  EXPECT_EQ(g.num_edges(), 5000u);
  expect_well_formed(g);
  EXPECT_TRUE(is_simple(g));

  const EdgeList g2 = random_graph(1000, 5000, 3);
  EXPECT_EQ(g.edges, g2.edges) << "same seed, same graph";
  const EdgeList g3 = random_graph(1000, 5000, 4);
  EXPECT_NE(g.edges, g3.edges);
}

TEST(RandomGraph, WeightsInUnitInterval) {
  const EdgeList g = random_graph(500, 2000, 8);
  for (const auto& e : g.edges) {
    EXPECT_GE(e.w, 0.0);
    EXPECT_LT(e.w, 1.0);
  }
}

TEST(RandomGraph, NearCompleteDensityStillExact) {
  // 50 vertices, 1225 possible edges; ask for 1200.
  const EdgeList g = random_graph(50, 1200, 5);
  EXPECT_EQ(g.num_edges(), 1200u);
  EXPECT_TRUE(is_simple(g));
}

TEST(RandomGraph, RejectsImpossibleRequests) {
  EXPECT_THROW(random_graph(10, 46, 1), std::invalid_argument);  // > n(n-1)/2
  EXPECT_THROW(random_graph(1, 1, 1), std::invalid_argument);
}

TEST(Mesh2D, StructureAndCounts) {
  const EdgeList g = mesh2d(10, 15, 2);
  EXPECT_EQ(g.num_vertices, 150u);
  // rows*(cols-1) horizontal + (rows-1)*cols vertical
  EXPECT_EQ(g.num_edges(), 10u * 14 + 9 * 15);
  expect_well_formed(g);
  EXPECT_TRUE(is_simple(g));
  EXPECT_EQ(num_components(g), 1u);
  const auto ds = degree_stats(g);
  EXPECT_EQ(ds.min_degree, 2u);  // corners
  EXPECT_EQ(ds.max_degree, 4u);  // interior
}

TEST(Mesh2D60, EdgeProbabilityRoughly60Percent) {
  const EdgeList g = mesh2d_p(200, 200, 0.6, 11);
  const double full = 200.0 * 199 * 2;
  const double frac = static_cast<double>(g.num_edges()) / full;
  EXPECT_NEAR(frac, 0.6, 0.02);
  expect_well_formed(g);
  EXPECT_TRUE(is_simple(g));
}

TEST(Mesh3D40, EdgeProbabilityRoughly40Percent) {
  const EdgeList g = mesh3d_p(30, 30, 30, 0.4, 12);
  EXPECT_EQ(g.num_vertices, 27000u);
  const double full = 3.0 * 29 * 30 * 30;
  EXPECT_NEAR(static_cast<double>(g.num_edges()) / full, 0.4, 0.02);
  expect_well_formed(g);
  EXPECT_TRUE(is_simple(g));
}

TEST(Mesh3D40, FullProbabilityIsRegularLattice) {
  const EdgeList g = mesh3d_p(5, 6, 7, 1.0, 1);
  EXPECT_EQ(g.num_vertices, 210u);
  EXPECT_EQ(g.num_edges(), 4u * 6 * 7 + 5 * 5 * 7 + 5 * 6 * 6);
  EXPECT_EQ(num_components(g), 1u);
}

TEST(GeometricKnn, DegreesAtLeastKAndConnectedish) {
  const int k = 6;
  const EdgeList g = geometric_knn(2000, k, 13);
  expect_well_formed(g);
  EXPECT_TRUE(is_simple(g));
  // After symmetrization each vertex keeps at least its k outgoing picks.
  const auto ds = degree_stats(g);
  EXPECT_GE(ds.min_degree, static_cast<std::size_t>(k));
  // Edge count between n*k/2 (fully mutual) and n*k (no mutual pairs).
  EXPECT_GE(g.num_edges(), 2000u * k / 2);
  EXPECT_LE(g.num_edges(), 2000u * k);
}

TEST(GeometricKnn, WeightsAreEuclideanDistances) {
  const EdgeList g = geometric_knn(500, 4, 14);
  for (const auto& e : g.edges) {
    EXPECT_GT(e.w, 0.0);
    EXPECT_LT(e.w, std::sqrt(2.0) + 1e-9);
  }
}

TEST(GeometricKnn, RejectsBadK) {
  EXPECT_THROW(geometric_knn(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(geometric_knn(10, 10, 1), std::invalid_argument);
}

class StructuredGraphTest : public ::testing::TestWithParam<int> {};

TEST_P(StructuredGraphTest, IsATree) {
  const int variant = GetParam();
  for (const VertexId n : {1u, 2u, 3u, 10u, 64u, 100u, 1024u, 5000u}) {
    const EdgeList g = structured_graph(variant, n, 17);
    EXPECT_EQ(g.num_vertices, n);
    ASSERT_EQ(g.num_edges(), static_cast<EdgeId>(n) - (n > 0 ? 1 : 0))
        << "str" << variant << " n=" << n;
    expect_well_formed(g);
    EXPECT_TRUE(is_simple(g));
    EXPECT_EQ(num_components(g), n > 0 ? 1u : 0u) << "str" << variant << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, StructuredGraphTest, ::testing::Values(0, 1, 2, 3));

TEST(StructuredGraph, RejectsUnknownVariant) {
  EXPECT_THROW(structured_graph(4, 10, 1), std::invalid_argument);
  EXPECT_THROW(structured_graph(-1, 10, 1), std::invalid_argument);
}

TEST(StructuredGraph, Str0WeightBandsIncreaseByLevel) {
  // The first n/2 edges (level 0) must be lighter than all level-1 edges.
  const VertexId n = 64;
  const EdgeList g = structured_graph(0, n, 19);
  double max_lvl0 = 0, min_lvl1 = 1e300;
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    if (i < n / 2) {
      max_lvl0 = std::max(max_lvl0, g.edges[i].w);
    } else if (i < n / 2 + n / 4) {
      min_lvl1 = std::min(min_lvl1, g.edges[i].w);
    }
  }
  EXPECT_LT(max_lvl0, min_lvl1);
}

}  // namespace
