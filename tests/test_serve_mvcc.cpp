// MVCC read snapshots: every forest-changing commit publishes an immutable
// epoch-stamped snapshot, reads/queries pin epochs, and a pinned answer is
// bit-identical to a from-scratch solve of that epoch's live graph — even
// while writers advance the session underneath.  Retired epochs fail with a
// clean kInvalidInput, never a stale or torn answer.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/msf.hpp"
#include "pprim/rng.hpp"
#include "serve/service_core.hpp"

namespace {

using namespace smp;
using namespace smp::graph;
using namespace smp::serve;

Request make(Op op, std::string session = {}) {
  Request r;
  r.op = op;
  r.session = std::move(session);
  return r;
}

/// Scratch-solves the snapshot's live graph with the same backend and
/// demands bit-identity with the forest the snapshot carries.
void check_against_scratch(const SnapshotData& snap,
                           const core::MsfOptions& opts) {
  const MsfResult ref = core::minimum_spanning_forest_of_candidates(
      snap.live, snap.live_ids, opts);
  std::vector<EdgeId> ref_forest = ref.edge_ids;
  std::sort(ref_forest.begin(), ref_forest.end());
  ASSERT_EQ(snap.forest_ids, ref_forest);

  std::unordered_map<EdgeId, Weight> weight_of;
  weight_of.reserve(snap.live_ids.size());
  for (std::size_t i = 0; i < snap.live_ids.size(); ++i) {
    weight_of[snap.live_ids[i]] = snap.live.edges[i].w;
  }
  Weight ref_weight = 0;
  for (const EdgeId id : snap.forest_ids) ref_weight += weight_of.at(id);
  ASSERT_EQ(snap.weight, ref_weight);
  ASSERT_EQ(snap.trees, ref.num_trees);
}

/// Forest connectivity of a snapshot by union-find — the reference a pinned
/// kConnected answer must reproduce.
class SnapshotUf {
 public:
  explicit SnapshotUf(const SnapshotData& snap)
      : parent_(snap.live.num_vertices) {
    for (VertexId i = 0; i < snap.live.num_vertices; ++i) parent_[i] = i;
    std::unordered_map<EdgeId, WEdge> edge_of;
    edge_of.reserve(snap.live_ids.size());
    for (std::size_t i = 0; i < snap.live_ids.size(); ++i) {
      edge_of[snap.live_ids[i]] = snap.live.edges[i];
    }
    for (const EdgeId id : snap.forest_ids) {
      const WEdge& e = edge_of.at(id);
      parent_[find(e.u)] = find(e.v);
    }
  }

  bool connected(VertexId u, VertexId v) { return find(u) == find(v); }

 private:
  VertexId find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  std::vector<VertexId> parent_;
};

TEST(ServeMvcc, WritesAdvanceEpochsAndPinnedReadsAreImmutable) {
  ServeOptions opts;
  opts.snapshot_ring = 16;
  ServiceCore svc(opts);
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 20;
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  // Serial writes: each commit is one epoch.  Record the facts each commit
  // acknowledged with.
  struct Committed {
    std::uint64_t epoch;
    Weight weight;
    std::size_t forest;
  };
  std::vector<Committed> history;
  for (int i = 0; i < 6; ++i) {
    Request ins = make(Op::kInsert, "g");
    ins.insertions = {{static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
                       1.0 + i}};
    const Response r = svc.call(ins);
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_GT(r.epoch, history.empty() ? 0u : history.back().epoch);
    history.push_back({r.epoch, r.weight, r.forest_edges});
  }

  // Every recorded epoch is still in the ring: pinned reads reproduce the
  // exact acknowledged state, repeatedly, regardless of later commits.
  for (int round = 0; round < 2; ++round) {
    for (const Committed& c : history) {
      Request w = make(Op::kWeight, "g");
      w.pin_epoch = c.epoch;
      const Response r = svc.call(w);
      ASSERT_EQ(r.status, Status::kOk);
      EXPECT_EQ(r.epoch, c.epoch);
      EXPECT_EQ(r.weight, c.weight);  // bit-identical, not approximately
      EXPECT_EQ(r.forest_edges, c.forest);

      Request s = make(Op::kSnapshot, "g");
      s.pin_epoch = c.epoch;
      const Response sr = svc.call(s);
      ASSERT_EQ(sr.status, Status::kOk);
      ASSERT_NE(sr.snapshot, nullptr);
      EXPECT_EQ(sr.snapshot->version, c.epoch);
      EXPECT_EQ(sr.snapshot->weight, c.weight);
    }
  }

  // Pinning an epoch that was never committed is an error, not a wait.
  Request future = make(Op::kWeight, "g");
  future.pin_epoch = 999;
  const Response fr = svc.call(future);
  EXPECT_EQ(fr.status, Status::kInvalidInput);
  EXPECT_NE(fr.detail.find("not committed"), std::string::npos);
  svc.shutdown();
}

TEST(ServeMvcc, RetiredEpochsFailCleanlyAndAreCounted) {
  ServeOptions opts;
  opts.snapshot_ring = 2;  // keep only the 2 newest epochs
  ServiceCore svc(opts);
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 16;
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  std::vector<std::uint64_t> epochs;
  for (int i = 0; i < 5; ++i) {
    Request ins = make(Op::kInsert, "g");
    ins.insertions = {{static_cast<VertexId>(i), static_cast<VertexId>(i + 1),
                       0.5}};
    const Response r = svc.call(ins);
    ASSERT_EQ(r.status, Status::kOk);
    epochs.push_back(r.epoch);
  }

  // The oldest epochs fell off the ring: pinning them is a clean error that
  // names the retention window.
  Request stale = make(Op::kWeight, "g");
  stale.pin_epoch = epochs.front();
  const Response sr = svc.call(stale);
  EXPECT_EQ(sr.status, Status::kInvalidInput);
  EXPECT_NE(sr.detail.find("retired"), std::string::npos);

  // The newest two still answer.
  for (std::size_t k = epochs.size() - 2; k < epochs.size(); ++k) {
    Request w = make(Op::kWeight, "g");
    w.pin_epoch = epochs[k];
    EXPECT_EQ(svc.call(w).status, Status::kOk) << "epoch " << epochs[k];
  }

  // health surfaces the reclamation count (epoch 0 + the early commits).
  const Response health = svc.call(make(Op::kHealth));
  ASSERT_EQ(health.status, Status::kOk);
  EXPECT_GE(health.reclaimed_epochs, 3u);
  EXPECT_GT(svc.metrics().epochs_reclaimed.load(), 0u);
  EXPECT_GT(svc.metrics().snapshots_published.load(), 0u);
  svc.shutdown();
}

class ServeMvccP : public ::testing::TestWithParam<int> {};

TEST_P(ServeMvccP, PinnedReadersSeeScratchIdenticalStateUnderWriters) {
  const int p = GetParam();
  constexpr VertexId kN = 120;
  ServeOptions opts;
  opts.msf.threads = p;
  opts.dispatchers = 4;
  opts.shards = 2;          // MVCC must hold across the sharded layout too
  opts.snapshot_ring = 32;  // generous: most pins land inside the window
  ServiceCore svc(opts);

  Request open = make(Op::kOpen, "g");
  open.num_vertices = kN;
  ASSERT_EQ(svc.call(open).status, Status::kOk);
  {
    Request ins = make(Op::kInsert, "g");
    Rng rng(11);
    for (int i = 0; i < 150; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(kN));
      auto v = static_cast<VertexId>(rng.next_below(kN - 1));
      if (v >= u) ++v;
      ins.insertions.push_back(WEdge{u, v, rng.next_double()});
    }
    ASSERT_EQ(svc.call(ins).status, Status::kOk);
  }

  std::atomic<bool> writers_done{false};
  std::atomic<int> write_failures{0};
  std::atomic<int> verified{0};
  std::atomic<int> retired_hits{0};

  std::vector<std::thread> threads;
  for (int wi = 0; wi < 2; ++wi) {
    threads.emplace_back([&, wi] {
      Rng rng(700 + static_cast<std::uint64_t>(wi));
      for (int i = 0; i < 30; ++i) {
        Request ins = make(Op::kInsert, "g");
        const auto u = static_cast<VertexId>(rng.next_below(kN));
        auto v = static_cast<VertexId>(rng.next_below(kN - 1));
        if (v >= u) ++v;
        ins.insertions.push_back(WEdge{u, v, rng.next_double()});
        if (!svc.call(ins).ok()) ++write_failures;
      }
    });
  }
  for (int ri = 0; ri < 2; ++ri) {
    threads.emplace_back([&, ri] {
      Rng rng(300 + static_cast<std::uint64_t>(ri));
      while (!writers_done.load(std::memory_order_acquire)) {
        // Grab the latest epoch's snapshot, then pin that epoch explicitly
        // for everything that follows: whatever the writers do next, these
        // answers must all describe the SAME committed state.
        const Response latest = svc.call(make(Op::kSnapshot, "g"));
        if (!latest.ok()) continue;
        const std::uint64_t epoch = latest.snapshot->version;

        Request w = make(Op::kWeight, "g");
        w.pin_epoch = epoch;
        const Response wr = svc.call(w);
        if (wr.status == Status::kInvalidInput) {
          ++retired_hits;  // the ring advanced past our pin; a clean miss
          continue;
        }
        ASSERT_EQ(wr.status, Status::kOk);
        ASSERT_EQ(wr.epoch, epoch);
        ASSERT_EQ(wr.weight, latest.snapshot->weight);
        ASSERT_EQ(wr.forest_edges, latest.snapshot->forest_ids.size());

        Request s = make(Op::kSnapshot, "g");
        s.pin_epoch = epoch;
        const Response sr = svc.call(s);
        if (sr.status == Status::kInvalidInput) {
          ++retired_hits;
          continue;
        }
        ASSERT_EQ(sr.status, Status::kOk);
        ASSERT_EQ(sr.snapshot->version, epoch);
        ASSERT_EQ(sr.snapshot->forest_ids, latest.snapshot->forest_ids);
        check_against_scratch(*sr.snapshot, opts.msf);

        // Pinned connectivity agrees with union-find over the pinned forest.
        SnapshotUf uf(*latest.snapshot);
        for (int probe = 0; probe < 4; ++probe) {
          const auto u = static_cast<VertexId>(rng.next_below(kN));
          auto v = static_cast<VertexId>(rng.next_below(kN - 1));
          if (v >= u) ++v;
          Request conn = make(Op::kConnected, "g");
          conn.u = u;
          conn.v = v;
          conn.pin_epoch = epoch;
          const Response cr = svc.call(conn);
          if (cr.status == Status::kInvalidInput &&
              cr.detail.find("retired") != std::string::npos) {
            ++retired_hits;
            break;
          }
          ASSERT_EQ(cr.status, Status::kOk);
          ASSERT_EQ(cr.epoch, epoch);
          ASSERT_EQ(cr.connected, uf.connected(u, v)) << u << "-" << v;
        }
        ++verified;
      }
    });
  }
  for (int wi = 0; wi < 2; ++wi) {
    threads[static_cast<std::size_t>(wi)].join();
  }
  writers_done.store(true, std::memory_order_release);
  for (std::size_t t = 2; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(write_failures.load(), 0);
  EXPECT_GT(verified.load(), 0);

  // Quiesced: the latest epoch must also be scratch-identical.
  const Response last = svc.call(make(Op::kSnapshot, "g"));
  ASSERT_TRUE(last.ok());
  check_against_scratch(*last.snapshot, opts.msf);
  svc.shutdown();
}

INSTANTIATE_TEST_SUITE_P(Threads, ServeMvccP, ::testing::Values(1, 2, 4, 8));

}  // namespace
