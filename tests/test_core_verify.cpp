// ForestPathMax and the O(m log n) MSF verifier.
#include <gtest/gtest.h>

#include "core/verify_msf.hpp"
#include "graph/generators.hpp"
#include "pprim/rng.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(ForestPathMax, PathGraphExhaustive) {
  // Path 0-1-2-3-4 with weights 5, 1, 9, 3: check every pair against a
  // brute-force path scan.
  const double w[] = {5, 1, 9, 3};
  std::vector<WEdge> edges;
  std::vector<EdgeId> ids;
  for (VertexId v = 0; v < 4; ++v) {
    edges.push_back({v, v + 1, w[v]});
    ids.push_back(v);
  }
  core::ForestPathMax fpm(5, edges, ids);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = 0; v < 5; ++v) {
      const auto pm = fpm.path_max(u, v);
      if (u == v) {
        EXPECT_FALSE(pm.has_value());
        continue;
      }
      double expect = 0;
      for (VertexId x = std::min(u, v); x < std::max(u, v); ++x) {
        expect = std::max(expect, w[x]);
      }
      ASSERT_TRUE(pm.has_value()) << u << "," << v;
      EXPECT_DOUBLE_EQ(pm->w, expect) << u << "," << v;
    }
  }
}

TEST(ForestPathMax, DisconnectedTreesReturnNullopt) {
  std::vector<WEdge> edges = {{0, 1, 1.0}, {2, 3, 2.0}};
  std::vector<EdgeId> ids = {0, 1};
  core::ForestPathMax fpm(5, edges, ids);
  EXPECT_TRUE(fpm.connected(0, 1));
  EXPECT_FALSE(fpm.connected(0, 2));
  EXPECT_FALSE(fpm.connected(0, 4));  // isolated vertex
  EXPECT_FALSE(fpm.path_max(0, 2).has_value());
  EXPECT_FALSE(fpm.path_max(4, 0).has_value());
  EXPECT_DOUBLE_EQ(fpm.path_max(2, 3)->w, 2.0);
}

TEST(ForestPathMax, RandomTreeAgainstBruteForce) {
  // MST of a random graph; compare path_max against a DFS walk for many
  // random pairs.
  const EdgeList g = random_graph(300, 1500, 3);
  const auto msf = seq::kruskal_msf(g);
  core::ForestPathMax fpm(g.num_vertices, msf.edges, msf.edge_ids);

  // Brute force: adjacency of the forest.
  std::vector<std::vector<std::pair<VertexId, double>>> adj(g.num_vertices);
  for (const auto& e : msf.edges) {
    adj[e.u].push_back({e.v, e.w});
    adj[e.v].push_back({e.u, e.w});
  }
  const auto brute = [&](VertexId s, VertexId t) -> std::optional<double> {
    std::vector<double> best(g.num_vertices, -1);
    std::vector<VertexId> stack{s};
    best[s] = 0;
    while (!stack.empty()) {
      const VertexId x = stack.back();
      stack.pop_back();
      for (const auto& [y, w] : adj[x]) {
        if (best[y] < 0) {
          best[y] = std::max(best[x], w);
          stack.push_back(y);
        }
      }
    }
    if (best[t] < 0) return std::nullopt;
    return best[t];
  };

  smp::Rng rng(4);
  for (int q = 0; q < 500; ++q) {
    const auto u = static_cast<VertexId>(rng.next_below(g.num_vertices));
    const auto v = static_cast<VertexId>(rng.next_below(g.num_vertices));
    if (u == v) continue;
    const auto got = fpm.path_max(u, v);
    const auto expect = brute(u, v);
    ASSERT_EQ(got.has_value(), expect.has_value()) << u << "," << v;
    if (got) {
      EXPECT_DOUBLE_EQ(got->w, *expect) << u << "," << v;
    }
  }
}

TEST(VerifyMsf, AcceptsTrueMsfAcrossZoo) {
  const EdgeList graphs[] = {
      random_graph(2000, 10000, 1), mesh2d(40, 40, 2),
      geometric_knn(1500, 5, 3),    structured_graph(1, 1024, 4),
      random_graph(3000, 1200, 5),  // disconnected
      rmat_graph(11, 8000, 6),
  };
  for (const auto& g : graphs) {
    const auto msf = seq::kruskal_msf(g);
    std::string err;
    EXPECT_TRUE(core::verify_msf(g, msf, &err)) << err;
  }
}

TEST(VerifyMsf, RejectsNonMinimumSpanningTree) {
  // Spanning but not minimum: swap one MST edge for a heavier cycle edge.
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);  // id 0
  g.add_edge(1, 2, 2.0);  // id 1
  g.add_edge(0, 2, 3.0);  // id 2
  MsfResult bad;
  bad.edges = {{0, 1, 1.0}, {0, 2, 3.0}};
  bad.edge_ids = {0, 2};
  bad.total_weight = 4.0;
  bad.num_trees = 1;
  std::string err;
  EXPECT_FALSE(core::verify_msf(g, bad, &err));
  EXPECT_NE(err.find("cycle property"), std::string::npos) << err;
}

TEST(VerifyMsf, RejectsStructurallyBrokenForest) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  MsfResult bad;
  bad.edges = {{0, 1, 1.0}};
  bad.edge_ids = {0};  // misses edge (1,2): not maximal
  EXPECT_FALSE(core::verify_msf(g, bad, nullptr));
}

TEST(VerifyMsf, AcceptsAllParallelAlgorithmOutputs) {
  const EdgeList g = random_graph(5000, 30000, 7);
  for (const auto alg : core::kParallelAlgorithms) {
    const auto r = test::run_alg(g, alg, 4);
    std::string err;
    EXPECT_TRUE(core::verify_msf(g, r, &err)) << core::to_string(alg) << ": " << err;
  }
}

TEST(VerifyMsf, EmptyAndEdgelessGraphs) {
  MsfResult empty;
  EXPECT_TRUE(core::verify_msf(EdgeList(0), empty, nullptr));
  empty.num_trees = 9;
  EXPECT_TRUE(core::verify_msf(EdgeList(9), empty, nullptr));
}

}  // namespace
