// Differential stress: randomized graph parameters × every MSF algorithm ×
// random thread counts, seeds parameterized so failures name the case.
#include <gtest/gtest.h>

#include "core/bor_uf.hpp"
#include "core/msf.hpp"
#include "core/verify_msf.hpp"
#include "graph/generators.hpp"
#include "pprim/rng.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

EdgeList random_instance(Rng& rng) {
  switch (rng.next_below(7)) {
    case 0: {
      const auto n = static_cast<VertexId>(50 + rng.next_below(3000));
      const auto maxm = static_cast<EdgeId>(n) * (n - 1) / 2;
      const auto m = 1 + rng.next_below(std::min<EdgeId>(maxm, 6 * n));
      return random_graph(n, m, rng.next());
    }
    case 1: {
      const auto r = static_cast<VertexId>(3 + rng.next_below(60));
      const auto c = static_cast<VertexId>(3 + rng.next_below(60));
      return mesh2d_p(r, c, 0.3 + 0.7 * rng.next_double(), rng.next());
    }
    case 2: {
      const auto s = static_cast<VertexId>(3 + rng.next_below(12));
      return mesh3d_p(s, s, s, 0.2 + 0.8 * rng.next_double(), rng.next());
    }
    case 3: {
      const auto n = static_cast<VertexId>(20 + rng.next_below(2000));
      const int k = 2 + static_cast<int>(rng.next_below(8));
      return geometric_knn(n, k, rng.next());
    }
    case 4:
      return structured_graph(static_cast<int>(rng.next_below(4)),
                              static_cast<VertexId>(2 + rng.next_below(3000)),
                              rng.next());
    case 5: {
      const int scale = 6 + static_cast<int>(rng.next_below(6));
      const auto n = EdgeId{1} << scale;
      return rmat_graph(scale, 1 + rng.next_below(4 * n), rng.next());
    }
    default: {  // multigraph with duplicate weights
      const auto n = static_cast<VertexId>(2 + rng.next_below(200));
      EdgeList g(n);
      const auto m = 1 + rng.next_below(1000);
      for (EdgeId i = 0; i < m; ++i) {
        const auto u = static_cast<VertexId>(rng.next_below(n));
        auto v = static_cast<VertexId>(rng.next_below(n));
        if (u == v) v = (v + 1) % n;
        if (n < 2) break;
        g.add_edge(u, v, static_cast<double>(rng.next_below(8)));  // heavy ties
      }
      return g;
    }
  }
}

class StressSeeds : public ::testing::TestWithParam<int> {};

TEST_P(StressSeeds, AllAlgorithmsMatchOnRandomInstances) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  for (int round = 0; round < 6; ++round) {
    const EdgeList g = random_instance(rng);
    if (g.num_vertices < 2) continue;
    const auto ref = seq::kruskal_msf(g);
    const auto ref_ids = test::sorted_ids(ref);
    // Fast full verification of the reference itself.
    std::string err;
    ASSERT_TRUE(core::verify_msf(g, ref, &err))
        << err << " (n=" << g.num_vertices << " m=" << g.num_edges() << ")";

    const int threads = 1 + static_cast<int>(rng.next_below(8));
    for (const auto alg : core::kParallelAlgorithms) {
      ASSERT_EQ(test::sorted_ids(test::run_alg(g, alg, threads)), ref_ids)
          << core::to_string(alg) << " n=" << g.num_vertices
          << " m=" << g.num_edges() << " t=" << threads << " round=" << round;
    }
    for (const auto alg : core::kExtensionAlgorithms) {
      ASSERT_EQ(test::sorted_ids(test::run_alg(g, alg, threads)), ref_ids)
          << core::to_string(alg) << " n=" << g.num_vertices
          << " m=" << g.num_edges() << " t=" << threads << " round=" << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, StressSeeds, ::testing::Range(0, 12));

}  // namespace
