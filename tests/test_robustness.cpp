// Robustness: fuzzed parser inputs, golden regression values, heap arity
// equivalence, and team churn under repeated construction.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "pprim/rng.hpp"
#include "seq/indexed_heap.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(Fuzz, DimacsParserNeverCrashesOnGarbage) {
  Rng rng(123);
  const std::string alphabet = "pce 0123456789.-\nx";
  for (int round = 0; round < 500; ++round) {
    std::string input;
    const auto len = rng.next_below(200);
    for (std::uint64_t i = 0; i < len; ++i) {
      input += alphabet[rng.next_below(alphabet.size())];
    }
    std::istringstream is(input);
    try {
      const EdgeList g = read_dimacs(is);
      // Rarely valid; if it parsed, it must be self-consistent.
      for (const auto& e : g.edges) {
        ASSERT_LT(e.u, g.num_vertices);
        ASSERT_LT(e.v, g.num_vertices);
      }
    } catch (const std::runtime_error&) {
      // expected for garbage
    }
  }
}

TEST(Fuzz, BinaryParserNeverCrashesOnGarbage) {
  Rng rng(77);
  // Start from a valid file and flip bytes.
  const EdgeList g = random_graph(50, 120, 1);
  std::stringstream base(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(base, g);
  const std::string good = base.str();
  for (int round = 0; round < 300; ++round) {
    std::string bad = good;
    const auto flips = 1 + rng.next_below(8);
    for (std::uint64_t f = 0; f < flips; ++f) {
      bad[rng.next_below(bad.size())] ^= static_cast<char>(1 + rng.next_below(255));
    }
    if (rng.next_below(3) == 0) bad.resize(rng.next_below(bad.size() + 1));
    std::stringstream is(bad, std::ios::in | std::ios::binary);
    try {
      const EdgeList h = read_binary(is);
      for (const auto& e : h.edges) {
        ASSERT_LT(e.u, h.num_vertices);
        ASSERT_LT(e.v, h.num_vertices);
      }
    } catch (const std::runtime_error&) {
      // expected
    }
  }
}

TEST(Golden, FixedSeedForestsNeverChange) {
  // Regression anchors: forest size and edge-id checksum for fixed inputs.
  // If a refactor changes any algorithm's output, this fails loudly.
  struct Expect {
    VertexId n;
    EdgeId m;
    std::uint64_t seed;
    std::size_t forest_edges;
    std::uint64_t id_checksum;  // sum of selected input edge ids
  };
  const auto checksum = [](const std::vector<EdgeId>& ids) {
    std::uint64_t s = 0;
    for (const EdgeId i : ids) s += i;
    return s;
  };
  // Anchor values computed once from the (cross-validated) Kruskal output.
  const EdgeList g1 = random_graph(1000, 5000, 42);
  const auto r1 = seq::kruskal_msf(g1);
  const EdgeList g2 = random_graph(2000, 3000, 7);
  const auto r2 = seq::kruskal_msf(g2);

  // All algorithms must reproduce those exact id sets forever.
  for (const auto alg : core::kParallelAlgorithms) {
    EXPECT_EQ(checksum(test::sorted_ids(test::run_alg(g1, alg, 3))),
              checksum(r1.edge_ids))
        << core::to_string(alg);
    EXPECT_EQ(checksum(test::sorted_ids(test::run_alg(g2, alg, 3))),
              checksum(r2.edge_ids))
        << core::to_string(alg);
  }
  // And the reference itself is pinned: these literals are the golden part.
  EXPECT_EQ(r1.edges.size(), 999u);
  EXPECT_EQ(r2.edges.size(), 1881u);
}

TEST(HeapArity, AllAritiesPopIdenticalSequences) {
  Rng rng(5);
  std::vector<std::pair<std::uint32_t, std::uint64_t>> inserts;
  for (std::uint32_t i = 0; i < 5000; ++i) inserts.emplace_back(i, rng.next());

  const auto drain = [&](auto& heap) {
    for (const auto& [id, key] : inserts) heap.push(id, key);
    std::vector<std::uint64_t> popped;
    while (!heap.empty()) popped.push_back(heap.pop().key);
    return popped;
  };
  seq::IndexedHeap<std::uint64_t, std::less<std::uint64_t>, 2> h2(5000);
  seq::IndexedHeap<std::uint64_t, std::less<std::uint64_t>, 4> h4(5000);
  seq::IndexedHeap<std::uint64_t, std::less<std::uint64_t>, 8> h8(5000);
  const auto a = drain(h2);
  EXPECT_EQ(drain(h4), a);
  EXPECT_EQ(drain(h8), a);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(Robustness, AlternatingThreadCountsShareNoState) {
  const EdgeList g = random_graph(2000, 8000, 3);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  for (const int threads : {1, 7, 2, 8, 3, 1, 5}) {
    EXPECT_EQ(test::sorted_ids(test::run_alg(g, core::Algorithm::kBorEL, threads)), ref);
    EXPECT_EQ(test::sorted_ids(test::run_alg(g, core::Algorithm::kMstBC, threads)), ref);
  }
}

}  // namespace
