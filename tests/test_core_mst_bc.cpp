// MST-BC-specific behaviour: base-size sweep (Prim↔Borůvka spectrum),
// permutation toggle, instrumentation, and heavy-collision stress.
#include <gtest/gtest.h>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(MstBC, BaseSizeSweepAllAgree) {
  const EdgeList g = random_graph(3000, 12000, 5);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  // base >= n: pure sequential Kruskal.  base = 1: full recursion.
  for (const VertexId base : {1u, 16u, 256u, 3000u, 100000u}) {
    for (const int threads : {1, 2, 7}) {
      core::MsfOptions opts;
      opts.algorithm = core::Algorithm::kMstBC;
      opts.threads = threads;
      opts.bc_base_size = base;
      const auto r = core::minimum_spanning_forest(g, opts);
      EXPECT_EQ(test::sorted_ids(r), ref) << "base=" << base << " t=" << threads;
    }
  }
}

TEST(MstBC, PermutationToggle) {
  const EdgeList g = mesh2d(50, 50, 6);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  for (const bool permute : {true, false}) {
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      core::MsfOptions opts;
      opts.algorithm = core::Algorithm::kMstBC;
      opts.threads = 4;
      opts.bc_base_size = 16;
      opts.bc_permute = permute;
      opts.seed = seed;
      const auto r = core::minimum_spanning_forest(g, opts);
      EXPECT_EQ(test::sorted_ids(r), ref) << "permute=" << permute << " seed=" << seed;
    }
  }
}

TEST(MstBC, SingleThreadBehavesLikePrimOneRound) {
  // With p=1 and a connected graph, the single Prim instance swallows the
  // whole component: after one round the graph is fully contracted.
  const EdgeList g = random_graph(500, 2000, 7);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kMstBC;
  opts.threads = 1;
  opts.bc_base_size = 1;
  std::vector<core::IterationStat> stats;
  opts.iteration_stats = nullptr;  // MST-BC does not trace iterations
  const auto r = core::minimum_spanning_forest(g, opts);
  EXPECT_EQ(test::sorted_ids(r), test::sorted_ids(seq::prim_msf(g)));
  (void)stats;
}

TEST(MstBC, HighCollisionStress) {
  // Many threads on a tiny dense graph maximizes coloring collisions and
  // maturity events; repeat with different seeds.
  const EdgeList g = random_graph(64, 1200, 8);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    core::MsfOptions opts;
    opts.algorithm = core::Algorithm::kMstBC;
    opts.threads = 8;
    opts.bc_base_size = 1;  // minimum legal value: maximize the parallel phase
    opts.seed = seed;
    const auto r = core::minimum_spanning_forest(g, opts);
    ASSERT_EQ(test::sorted_ids(r), ref) << "seed=" << seed;
  }
}

TEST(MstBC, StructuredWorstCases) {
  // The paper motivates MST-BC with the str* inputs, which are Borůvka's
  // iteration-count worst cases.
  for (int variant = 0; variant < 4; ++variant) {
    const EdgeList g = structured_graph(variant, 4096, 9);
    const auto ref = test::sorted_ids(seq::kruskal_msf(g));
    for (const int threads : {1, 4}) {
      const auto r = test::run_alg(g, core::Algorithm::kMstBC, threads, 64);
      EXPECT_EQ(test::sorted_ids(r), ref) << "str" << variant << " t=" << threads;
    }
  }
}

TEST(MstBC, StepTimesAccumulate) {
  const EdgeList g = random_graph(2000, 8000, 10);
  core::StepTimes st;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kMstBC;
  opts.threads = 2;
  opts.bc_base_size = 64;
  opts.step_times = &st;
  (void)core::minimum_spanning_forest(g, opts);
  EXPECT_GT(st.total(), 0.0);
  EXPECT_GE(st.find_min, 0.0);
  EXPECT_GE(st.connect, 0.0);
  EXPECT_GE(st.compact, 0.0);
}

TEST(MstBC, DisconnectedInput) {
  // Two random components plus isolated vertices.
  EdgeList g(5000);
  const EdgeList a = random_graph(2000, 6000, 11);
  const EdgeList b = random_graph(2000, 6000, 12);
  for (const auto& e : a.edges) g.add_edge(e.u, e.v, e.w);
  for (const auto& e : b.edges) g.add_edge(e.u + 2000, e.v + 2000, e.w);
  const auto ref = seq::kruskal_msf(g);
  for (const int threads : {1, 4}) {
    const auto r = test::run_alg(g, core::Algorithm::kMstBC, threads, 32);
    EXPECT_EQ(test::sorted_ids(r), test::sorted_ids(ref)) << threads;
    EXPECT_EQ(r.num_trees, ref.num_trees);
  }
}

}  // namespace
