#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/msf.hpp"
#include "graph/edge_list.hpp"
#include "graph/msf_result.hpp"

namespace smp::test {

/// Sorted input-edge indices of a forest — the canonical identity of an MSF
/// under our total edge order; equal across all correct algorithms.
inline std::vector<graph::EdgeId> sorted_ids(const graph::MsfResult& r) {
  std::vector<graph::EdgeId> ids = r.edge_ids;
  std::sort(ids.begin(), ids.end());
  return ids;
}

/// Run one algorithm with given thread count (MST-BC base size kept small so
/// tests exercise the parallel phase, not just the sequential fallback).
inline graph::MsfResult run_alg(const graph::EdgeList& g, core::Algorithm alg,
                                int threads, graph::VertexId bc_base = 32) {
  core::MsfOptions opts;
  opts.algorithm = alg;
  opts.threads = threads;
  opts.bc_base_size = bc_base;
  return core::minimum_spanning_forest(g, opts);
}

/// Weight equality up to floating-point summation-order noise: different
/// algorithms add the same edge weights in different orders.
#define EXPECT_WEIGHT_EQ(a, b) \
  EXPECT_NEAR((a), (b), 1e-9 * std::max(1.0, std::abs(b)))

}  // namespace smp::test
