// Degenerate and adversarial inputs for all five parallel algorithms.
#include <gtest/gtest.h>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "pprim/rng.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

void expect_all_algorithms(const EdgeList& g, double expect_weight,
                           std::size_t expect_edges, std::size_t expect_trees) {
  for (const auto alg : core::kParallelAlgorithms) {
    for (const int threads : {1, 4}) {
      const auto r = test::run_alg(g, alg, threads);
      EXPECT_WEIGHT_EQ(r.total_weight, expect_weight)
          << core::to_string(alg) << " t=" << threads;
      EXPECT_EQ(r.edges.size(), expect_edges) << core::to_string(alg);
      EXPECT_EQ(r.num_trees, expect_trees) << core::to_string(alg);
    }
  }
}

TEST(EdgeCases, EmptyGraph) { expect_all_algorithms(EdgeList(0), 0.0, 0, 0); }

TEST(EdgeCases, SingleVertex) { expect_all_algorithms(EdgeList(1), 0.0, 0, 1); }

TEST(EdgeCases, ManyIsolatedVertices) {
  expect_all_algorithms(EdgeList(1000), 0.0, 0, 1000);
}

TEST(EdgeCases, SingleEdge) {
  EdgeList g(2);
  g.add_edge(0, 1, 2.5);
  expect_all_algorithms(g, 2.5, 1, 1);
}

TEST(EdgeCases, TwoVertexMultigraph) {
  EdgeList g(2);
  g.add_edge(0, 1, 5.0);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 3.0);
  expect_all_algorithms(g, 1.0, 1, 1);
}

TEST(EdgeCases, AllEqualWeights) {
  EdgeList g(6);  // 3-cycle + 3-cycle bridged, every weight 2.0
  g.add_edge(0, 1, 2.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 0, 2.0);
  g.add_edge(3, 4, 2.0);
  g.add_edge(4, 5, 2.0);
  g.add_edge(5, 3, 2.0);
  g.add_edge(2, 3, 2.0);
  const auto ref = seq::kruskal_msf(g);
  for (const auto alg : core::kParallelAlgorithms) {
    EXPECT_EQ(test::sorted_ids(test::run_alg(g, alg, 4)), test::sorted_ids(ref))
        << core::to_string(alg);
  }
  expect_all_algorithms(g, 10.0, 5, 1);
}

TEST(EdgeCases, PathGraph) {
  const VertexId n = 2000;
  EdgeList g(n);
  smp::Rng rng(4);
  for (VertexId v = 1; v < n; ++v) g.add_edge(v - 1, v, rng.next_double());
  expect_all_algorithms(g, g.total_weight(), n - 1, 1);
}

TEST(EdgeCases, StarGraph) {
  const VertexId n = 1500;
  EdgeList g(n);
  smp::Rng rng(5);
  for (VertexId v = 1; v < n; ++v) g.add_edge(0, v, rng.next_double());
  expect_all_algorithms(g, g.total_weight(), n - 1, 1);
}

TEST(EdgeCases, CycleGraphDropsHeaviest) {
  const VertexId n = 100;
  EdgeList g(n);
  double heaviest = -1;
  smp::Rng rng(6);
  for (VertexId v = 0; v < n; ++v) {
    const double w = rng.next_double();
    g.add_edge(v, (v + 1) % n, w);
    heaviest = std::max(heaviest, w);
  }
  expect_all_algorithms(g, g.total_weight() - heaviest, n - 1, 1);
}

TEST(EdgeCases, CompleteGraphSmall) {
  const VertexId n = 40;
  EdgeList g(n);
  smp::Rng rng(7);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) g.add_edge(u, v, rng.next_double());
  }
  const auto ref = seq::kruskal_msf(g);
  for (const auto alg : core::kParallelAlgorithms) {
    EXPECT_EQ(test::sorted_ids(test::run_alg(g, alg, 4)), test::sorted_ids(ref))
        << core::to_string(alg);
  }
}

TEST(EdgeCases, ManySmallComponents) {
  // 500 disjoint triangles.
  EdgeList g(1500);
  smp::Rng rng(8);
  for (VertexId c = 0; c < 500; ++c) {
    const VertexId b = 3 * c;
    g.add_edge(b, b + 1, rng.next_double());
    g.add_edge(b + 1, b + 2, rng.next_double());
    g.add_edge(b, b + 2, rng.next_double());
  }
  const auto ref = seq::kruskal_msf(g);
  EXPECT_EQ(ref.num_trees, 500u);
  for (const auto alg : core::kParallelAlgorithms) {
    const auto r = test::run_alg(g, alg, 4);
    EXPECT_EQ(test::sorted_ids(r), test::sorted_ids(ref)) << core::to_string(alg);
    EXPECT_EQ(r.num_trees, 500u);
  }
}

TEST(EdgeCases, ThreadsExceedVertices) {
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  for (const auto alg : core::kParallelAlgorithms) {
    const auto r = test::run_alg(g, alg, 16);
    EXPECT_DOUBLE_EQ(r.total_weight, 6.0) << core::to_string(alg);
  }
}

TEST(EdgeCases, SelfLoopRejectedByDispatcher) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.edges.push_back(WEdge{2, 2, 1.0});  // bypass add_edge's assert
  core::MsfOptions opts;
  try {
    (void)core::minimum_spanning_forest(g, opts);
    FAIL() << "self-loop accepted";
  } catch (const smp::Error& e) {
    EXPECT_EQ(e.code(), smp::ErrorCode::kInvalidInput);
  }
}

TEST(EdgeCases, NegativeWeights) {
  EdgeList g(4);
  g.add_edge(0, 1, -5.0);
  g.add_edge(1, 2, -1.0);
  g.add_edge(2, 3, 2.0);
  g.add_edge(3, 0, -3.0);
  // MSF drops the heaviest cycle edge (2.0).
  expect_all_algorithms(g, -9.0, 3, 1);
}

}  // namespace
