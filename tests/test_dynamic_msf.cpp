// Batch-dynamic MSF subsystem: after every batch of a randomized
// insert/delete trace the maintained forest must be bit-identical (edge ids
// and deterministically-summed weight) to a from-scratch solve on the
// current live graph — for every algorithm backend and thread count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/msf.hpp"
#include "dynamic/dynamic_msf.hpp"
#include "dynamic/edge_slab.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "pprim/rng.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;
using smp::dynamic::DynamicMsf;
using smp::dynamic::DynamicMsfOptions;
using smp::dynamic::EdgeStore;
using smp::dynamic::MsfDelta;

DynamicMsfOptions dyn_opts(core::Algorithm alg, int threads) {
  DynamicMsfOptions o;
  o.msf.algorithm = alg;
  o.msf.threads = threads;
  o.msf.bc_base_size = 32;  // exercise MST-BC's parallel phase, not just base
  return o;
}

/// From-scratch reference on the store's live graph, in store-id space:
/// forest ids (ascending) and the weight summed in ascending store-id order
/// — the exact quantities DynamicMsf maintains incrementally.
struct Reference {
  std::vector<EdgeId> forest;
  Weight weight = 0;
  std::size_t trees = 0;
};

Reference scratch_reference(const DynamicMsf& d, core::Algorithm alg,
                            int threads) {
  std::vector<EdgeId> ids;
  const EdgeList live = d.store().live_graph(&ids);
  const MsfResult r = core::minimum_spanning_forest_of_candidates(
      live, ids, dyn_opts(alg, threads).msf);
  Reference ref;
  ref.forest = r.edge_ids;
  std::sort(ref.forest.begin(), ref.forest.end());
  for (const EdgeId id : ref.forest) ref.weight += d.store().edge(id).w;
  ref.trees = r.num_trees;
  return ref;
}

class DynamicMsfTrace
    : public ::testing::TestWithParam<std::tuple<core::Algorithm, int>> {};

TEST_P(DynamicMsfTrace, BitIdenticalToScratchAfterEveryBatch) {
  const auto [alg, threads] = GetParam();
  const VertexId n = 200;
  const EdgeList g0 = random_graph(n, 600, 42);
  DynamicMsf d(g0, dyn_opts(alg, threads));

  Rng rng(2026);
  std::vector<EdgeId> live_ids(g0.num_edges());
  for (EdgeId i = 0; i < g0.num_edges(); ++i) live_ids[i] = i;

  for (int batch = 0; batch < 8; ++batch) {
    // Mixed batch: a few inserts (parallel edges and duplicate weights
    // included on purpose) and a few deletes of arbitrary live edges —
    // forest edges very much eligible.
    std::vector<WEdge> ins;
    for (std::uint64_t i = 0; i < 2 + rng.next_below(6); ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      auto v = static_cast<VertexId>(rng.next_below(n - 1));
      if (v >= u) ++v;
      const Weight w = (rng.next_below(4) == 0) ? 0.5 : rng.next_double();
      ins.push_back(WEdge{u, v, w});
    }
    std::vector<EdgeId> del;
    for (std::uint64_t i = 0; i < 1 + rng.next_below(5) && !live_ids.empty();
         ++i) {
      const std::size_t k =
          static_cast<std::size_t>(rng.next_below(live_ids.size()));
      del.push_back(live_ids[k]);
      live_ids.erase(live_ids.begin() + static_cast<std::ptrdiff_t>(k));
    }
    const EdgeId first_new = d.store().size();
    const MsfDelta delta = d.apply_batch(ins, del);
    for (EdgeId id = first_new; id < d.store().size(); ++id) {
      live_ids.push_back(id);
    }

    const Reference ref = scratch_reference(d, alg, threads);
    ASSERT_EQ(d.forest_edge_ids(), ref.forest)
        << "batch " << batch << " alg " << core::to_string(alg) << " p="
        << threads;
    ASSERT_EQ(d.total_weight(), ref.weight) << "weight must be bit-identical";
    ASSERT_EQ(d.num_trees(), ref.trees);
    ASSERT_EQ(delta.total_weight, ref.weight);
    ASSERT_EQ(delta.num_trees, ref.trees);
    ASSERT_EQ(delta.live_edges, d.store().num_live());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, DynamicMsfTrace,
    ::testing::Combine(
        ::testing::Values(core::Algorithm::kBorEL, core::Algorithm::kBorAL,
                          core::Algorithm::kBorALM, core::Algorithm::kBorFAL,
                          core::Algorithm::kMstBC, core::Algorithm::kSeqPrim,
                          core::Algorithm::kSeqKruskal,
                          core::Algorithm::kSeqBoruvka,
                          core::Algorithm::kParKruskal,
                          core::Algorithm::kFilterKruskal,
                          core::Algorithm::kSampleFilter,
                          core::Algorithm::kBorUF,
                          core::Algorithm::kChampion),
        ::testing::Values(1, 2, 4, 8)),
    [](const auto& info) {
      std::string name(core::to_string(std::get<0>(info.param)));
      std::erase_if(name, [](char c) { return !std::isalnum(
                                static_cast<unsigned char>(c)); });
      return name + "_p" + std::to_string(std::get<1>(info.param));
    });

TEST(DynamicMsf, DeltaAlgebraReconstructsForest) {
  const EdgeList g0 = random_graph(120, 400, 7);
  DynamicMsf d(g0, dyn_opts(core::Algorithm::kBorFAL, 4));
  Rng rng(5);
  std::vector<EdgeId> old_forest = d.forest_edge_ids();
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<WEdge> ins;
    for (int i = 0; i < 4; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(120));
      auto v = static_cast<VertexId>(rng.next_below(119));
      if (v >= u) ++v;
      ins.push_back(WEdge{u, v, rng.next_double()});
    }
    std::vector<EdgeId> del;
    if (!old_forest.empty()) del.push_back(old_forest[batch % old_forest.size()]);
    const MsfDelta delta = d.apply_batch(ins, del);

    // old ∖ removed ∪ added == new, and the two sets are disjoint.
    std::vector<EdgeId> rebuilt;
    std::set_difference(old_forest.begin(), old_forest.end(),
                        delta.forest_removed.begin(),
                        delta.forest_removed.end(),
                        std::back_inserter(rebuilt));
    std::vector<EdgeId> merged;
    std::set_union(rebuilt.begin(), rebuilt.end(), delta.forest_added.begin(),
                   delta.forest_added.end(), std::back_inserter(merged));
    EXPECT_EQ(merged, d.forest_edge_ids());
    std::vector<EdgeId> overlap;
    std::set_intersection(delta.forest_added.begin(),
                          delta.forest_added.end(),
                          delta.forest_removed.begin(),
                          delta.forest_removed.end(),
                          std::back_inserter(overlap));
    EXPECT_TRUE(overlap.empty());
    old_forest = d.forest_edge_ids();
  }
}

TEST(DynamicMsf, InsertOnlySmallBatchSparsifies) {
  const EdgeList g0 = random_graph(2000, 12000, 3);
  DynamicMsf d(g0, dyn_opts(core::Algorithm::kSeqKruskal, 1));
  const std::vector<WEdge> ins = {{0, 1000, 0.00001}, {5, 1500, 0.00002}};
  const MsfDelta delta = d.apply_batch(ins, {});
  EXPECT_FALSE(delta.recomputed_from_scratch);
  // Candidate set is forest + batch, independent of m.
  EXPECT_LE(delta.candidate_edges, 2000u + ins.size());
  EXPECT_LT(delta.candidate_edges, delta.live_edges / 2);
  // The near-zero-weight insertions must have entered the forest.
  const auto& f = d.forest_edge_ids();
  EXPECT_TRUE(std::binary_search(f.begin(), f.end(), g0.num_edges()));
  EXPECT_TRUE(std::binary_search(f.begin(), f.end(), g0.num_edges() + 1));
}

TEST(DynamicMsf, LargeBatchCrossesOverToScratch) {
  const EdgeList g0 = random_graph(100, 300, 11);
  DynamicMsf d(g0, dyn_opts(core::Algorithm::kBorEL, 2));
  Rng rng(9);
  std::vector<WEdge> ins;
  for (int i = 0; i < 200; ++i) {  // 200 ops vs 300 live: way past 25%
    const auto u = static_cast<VertexId>(rng.next_below(100));
    auto v = static_cast<VertexId>(rng.next_below(99));
    if (v >= u) ++v;
    ins.push_back(WEdge{u, v, rng.next_double()});
  }
  const MsfDelta delta = d.apply_batch(ins, {});
  EXPECT_TRUE(delta.recomputed_from_scratch);
  const Reference ref = scratch_reference(d, core::Algorithm::kBorEL, 2);
  EXPECT_EQ(d.forest_edge_ids(), ref.forest);
}

TEST(DynamicMsf, CrossoverFractionZeroAlwaysRecomputes) {
  DynamicMsfOptions o = dyn_opts(core::Algorithm::kSeqKruskal, 1);
  o.scratch_batch_fraction = 0.0;
  const EdgeList g0 = random_graph(50, 120, 13);
  DynamicMsf d(g0, o);
  const std::vector<WEdge> one = {{0, 1, 0.001}};
  EXPECT_TRUE(d.apply_batch(one, {}).recomputed_from_scratch);
}

TEST(DynamicMsf, BridgeDeletionSplitsTree) {
  // Path 0-1-2: deleting the middle edge has no replacement.
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  DynamicMsf d(g, dyn_opts(core::Algorithm::kBorFAL, 2));
  ASSERT_EQ(d.num_trees(), 1u);
  const std::vector<EdgeId> del = {1};
  const MsfDelta delta = d.apply_batch({}, del);
  EXPECT_EQ(delta.forest_removed, del);
  EXPECT_TRUE(delta.forest_added.empty());
  EXPECT_EQ(d.num_trees(), 2u);
  EXPECT_EQ(d.total_weight(), 1.0);
}

TEST(DynamicMsf, DeletionPromotesReplacement) {
  // Triangle: forest is the two light edges; deleting one promotes the
  // heavy non-tree edge.
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 9.0);
  DynamicMsf d(g, dyn_opts(core::Algorithm::kBorAL, 2));
  ASSERT_EQ(d.forest_edge_ids(), (std::vector<EdgeId>{0, 1}));
  const std::vector<EdgeId> del = {0};
  const MsfDelta delta = d.apply_batch({}, del);
  EXPECT_EQ(delta.forest_removed, (std::vector<EdgeId>{0}));
  EXPECT_EQ(delta.forest_added, (std::vector<EdgeId>{2}));
  EXPECT_EQ(d.num_trees(), 1u);
  EXPECT_EQ(d.total_weight(), 11.0);
}

TEST(DynamicMsf, NonTreeDeletionSkipsSolveEntirely) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 9.0);  // non-tree
  DynamicMsf d(g, dyn_opts(core::Algorithm::kBorFAL, 2));
  const std::vector<EdgeId> del = {2};
  const MsfDelta delta = d.apply_batch({}, del);
  EXPECT_FALSE(delta.changed_forest());
  EXPECT_EQ(delta.candidate_edges, 0u);  // fast path: no solver call
  EXPECT_EQ(d.num_trees(), 1u);
  EXPECT_EQ(d.total_weight(), 3.0);
}

TEST(DynamicMsf, EmptyBatchIsNoOp) {
  const EdgeList g0 = random_graph(40, 100, 17);
  DynamicMsf d(g0, dyn_opts(core::Algorithm::kBorALM, 2));
  const Weight w = d.total_weight();
  const MsfDelta delta = d.apply_batch({}, {});
  EXPECT_FALSE(delta.changed_forest());
  EXPECT_EQ(delta.total_weight, w);
  EXPECT_EQ(delta.live_edges, 100u);
}

TEST(DynamicMsf, GrowsFromEdgelessGraph) {
  DynamicMsf d(VertexId{5}, dyn_opts(core::Algorithm::kBorFAL, 2));
  EXPECT_EQ(d.num_trees(), 5u);
  const std::vector<WEdge> ins = {{0, 1, 1.0}, {1, 2, 2.0}, {3, 4, 3.0}};
  const MsfDelta delta = d.apply_batch(ins, {});
  EXPECT_EQ(delta.forest_added.size(), 3u);
  EXPECT_EQ(d.num_trees(), 2u);
  EXPECT_EQ(d.total_weight(), 6.0);
}

TEST(DynamicMsf, BadBatchesThrowBeforeMutating) {
  const EdgeList g0 = random_graph(30, 80, 23);
  DynamicMsf d(g0, dyn_opts(core::Algorithm::kSeqKruskal, 1));
  const std::size_t live_before = d.store().num_live();

  const std::vector<WEdge> self_loop = {{3, 3, 1.0}};
  EXPECT_THROW(d.apply_batch(self_loop, {}), Error);
  const std::vector<WEdge> oob = {{0, 1000, 1.0}};
  EXPECT_THROW(d.apply_batch(oob, {}), Error);
  const std::vector<WEdge> nan_w = {{0, 1, std::nan("")}};
  EXPECT_THROW(d.apply_batch(nan_w, {}), Error);
  const std::vector<EdgeId> dead = {9999};
  EXPECT_THROW(d.apply_batch({}, dead), Error);
  const std::vector<EdgeId> dup = {0, 0};
  EXPECT_THROW(d.apply_batch({}, dup), Error);
  // A once-deleted id stays dead forever.
  const std::vector<EdgeId> once = {0};
  d.apply_batch({}, once);
  EXPECT_THROW(d.apply_batch({}, once), Error);

  EXPECT_EQ(d.store().num_live(), live_before - 1);
  // The failed batches changed nothing; only the valid deletion did.
  const Reference ref = scratch_reference(d, core::Algorithm::kSeqKruskal, 1);
  EXPECT_EQ(d.forest_edge_ids(), ref.forest);
}

TEST(EdgeStore, StableIdsAndTombstones) {
  EdgeStore s(VertexId{4});
  const EdgeId a = s.insert(0, 1, 1.0);
  const EdgeId b = s.insert(1, 2, 2.0);
  const EdgeId c = s.insert(2, 3, 3.0);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(c, 2u);
  s.erase(b);
  EXPECT_FALSE(s.is_live(b));
  EXPECT_EQ(s.num_live(), 2u);
  // Ids are never reused: the next insert gets a fresh slot.
  EXPECT_EQ(s.insert(1, 2, 2.5), 3u);
  EXPECT_EQ(s.edge(b).w, 2.0);  // tombstoned edge still readable
  EXPECT_THROW(s.erase(b), Error);
  EXPECT_THROW(s.erase(EdgeId{99}), Error);

  std::vector<EdgeId> ids;
  const EdgeList live = s.live_graph(&ids);
  EXPECT_EQ(ids, (std::vector<EdgeId>{0, 2, 3}));
  EXPECT_EQ(live.num_edges(), 3u);
  EXPECT_EQ(live.edges[1].w, 3.0);
}

TEST(EdgeStore, FindLivePicksCanonicalParallelEdge) {
  EdgeStore s(VertexId{3});
  const EdgeId a = s.insert(0, 1, 5.0);
  const EdgeId b = s.insert(1, 0, 5.0);  // parallel, equal weight, later id
  const EdgeId c = s.insert(0, 1, 3.0);  // parallel, lighter
  EXPECT_EQ(s.find_live(1, 0), std::optional<EdgeId>(c));
  s.erase(c);
  EXPECT_EQ(s.find_live(0, 1), std::optional<EdgeId>(a));  // weight tie → id
  s.erase(a);
  EXPECT_EQ(s.find_live(0, 1), std::optional<EdgeId>(b));
  s.erase(b);
  EXPECT_EQ(s.find_live(0, 1), std::nullopt);
  EXPECT_EQ(s.find_live(1, 2), std::nullopt);
  // Inserts after the lazy index build keep it coherent.
  const EdgeId d = s.insert(0, 1, 7.0);
  EXPECT_EQ(s.find_live(0, 1), std::optional<EdgeId>(d));
}

TEST(EdgeStore, RejectsInvalidEdges) {
  EdgeStore s(VertexId{3});
  EXPECT_THROW(s.insert(0, 0, 1.0), Error);
  EXPECT_THROW(s.insert(0, 3, 1.0), Error);
  EXPECT_THROW(s.insert(0, 1, std::nan("")), Error);
  EXPECT_EQ(s.size(), 0u);
}

TEST(EdgeStore, CompactReclaimsTombstonesPreservingOrder) {
  EdgeStore s(VertexId{6});
  std::vector<EdgeId> ids;
  for (int i = 0; i < 6; ++i) {
    ids.push_back(s.insert(static_cast<VertexId>(i % 5),
                           static_cast<VertexId>(i % 5 + 1), 1.0 + i));
  }
  s.erase(ids[1]);
  s.erase(ids[4]);
  const std::vector<WEdge> live_before = {s.edge(ids[0]), s.edge(ids[2]),
                                          s.edge(ids[3]), s.edge(ids[5])};

  const std::vector<EdgeId> remap = s.compact();
  ASSERT_EQ(remap.size(), 6u);
  // Order-preserving renumber of the survivors; tombstones map nowhere.
  EXPECT_EQ(remap[0], 0u);
  EXPECT_EQ(remap[1], kInvalidEdge);
  EXPECT_EQ(remap[2], 1u);
  EXPECT_EQ(remap[3], 2u);
  EXPECT_EQ(remap[4], kInvalidEdge);
  EXPECT_EQ(remap[5], 3u);
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.num_live(), 4u);
  for (std::size_t i = 0; i < live_before.size(); ++i) {
    EXPECT_EQ(s.edge(static_cast<EdgeId>(i)).u, live_before[i].u);
    EXPECT_EQ(s.edge(static_cast<EdgeId>(i)).v, live_before[i].v);
    EXPECT_EQ(s.edge(static_cast<EdgeId>(i)).w, live_before[i].w);
  }
  // The pair index rebuilds against the new ids, and fresh inserts continue
  // from the compacted end.
  EXPECT_EQ(s.find_live(1, 2), std::nullopt);  // ids[1] was {1,2}, erased
  EXPECT_EQ(s.find_live(2, 3), std::optional<EdgeId>(1));
  EXPECT_EQ(s.insert(0, 5, 9.0), EdgeId{4});
}

TEST(EdgeStore, CompactOfFullyLiveStoreIsIdentity) {
  EdgeStore s(VertexId{3});
  s.insert(0, 1, 1.0);
  s.insert(1, 2, 2.0);
  const std::vector<EdgeId> remap = s.compact();
  EXPECT_EQ(remap, (std::vector<EdgeId>{0, 1}));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.num_live(), 2u);
}

TEST(DynamicMsf, CompactStoreKeepsForestBitIdentical) {
  // Grow, delete (tombstoning forest and non-forest edges alike), compact,
  // then demand the remapped forest still solves bit-identically from
  // scratch and survives further batches.
  const EdgeList g0 = random_graph(120, 400, 7);
  DynamicMsf d(g0, dyn_opts(core::Algorithm::kBorFAL, 2));
  std::vector<EdgeId> del;
  for (EdgeId id = 0; id < 200; id += 2) del.push_back(id);
  d.apply_batch({}, del);
  const Weight weight_before = d.total_weight();
  const std::size_t trees_before = d.num_trees();
  const std::size_t live_before = d.store().num_live();

  const std::vector<EdgeId> remap = d.compact_store();
  ASSERT_EQ(remap.size(), 400u);
  EXPECT_EQ(d.store().size(), live_before);
  EXPECT_EQ(d.store().num_live(), live_before);
  EXPECT_EQ(d.total_weight(), weight_before);
  EXPECT_EQ(d.num_trees(), trees_before);
  for (const EdgeId id : d.forest_edge_ids()) {
    EXPECT_TRUE(d.store().is_live(id));
  }
  Reference ref = scratch_reference(d, core::Algorithm::kBorFAL, 2);
  EXPECT_EQ(d.forest_edge_ids(), ref.forest);
  EXPECT_EQ(d.total_weight(), ref.weight);

  // Batches after compaction behave like nothing happened.
  const std::vector<WEdge> more = {WEdge{0, 1, 0.001}, WEdge{5, 9, 0.002}};
  d.apply_batch(more, {});
  ref = scratch_reference(d, core::Algorithm::kBorFAL, 2);
  EXPECT_EQ(d.forest_edge_ids(), ref.forest);
  EXPECT_EQ(d.total_weight(), ref.weight);
}

TEST(CandidateMsf, MapsIdsBackAndRejectsUnsortedIds) {
  // Solve a 2-edge candidate subset of a 4-edge graph.
  EdgeList cand(3);
  cand.add_edge(0, 1, 1.0);
  cand.add_edge(1, 2, 2.0);
  const std::vector<EdgeId> ids = {3, 7};
  const MsfResult r =
      core::minimum_spanning_forest_of_candidates(cand, ids, {});
  auto got = r.edge_ids;
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, ids);

  const std::vector<EdgeId> unsorted = {7, 3};
  EXPECT_THROW(
      core::minimum_spanning_forest_of_candidates(cand, unsorted, {}), Error);
  const std::vector<EdgeId> repeated = {3, 3};
  EXPECT_THROW(
      core::minimum_spanning_forest_of_candidates(cand, repeated, {}), Error);
  const std::vector<EdgeId> short_ids = {3};
  EXPECT_THROW(
      core::minimum_spanning_forest_of_candidates(cand, short_ids, {}), Error);
}

TEST(EdgeSlab, RoundTripAndDynamicMsfAdoption) {
  // A slab written from an edge list, reopened via mmap, adopted as the
  // store's base layer: the forest must match a from-scratch solve, and
  // subsequent batches must keep working on top of the mapped base.
  const EdgeList g = random_graph(200, 800, 17);
  const std::string path = ::testing::TempDir() + "/smpmsf_slab.slab";
  dynamic::EdgeSlab::write_file(path, g);
  auto slab = std::make_shared<const dynamic::EdgeSlab>(
      dynamic::EdgeSlab::open(path));
  EXPECT_EQ(slab->num_vertices(), g.num_vertices);
  ASSERT_EQ(slab->num_edges(), g.num_edges());
  DynamicMsf d(EdgeStore(slab), dyn_opts(core::Algorithm::kChampion, 2));
  const Reference ref = scratch_reference(d, core::Algorithm::kChampion, 2);
  EXPECT_EQ(d.forest_edge_ids(), ref.forest);
  EXPECT_EQ(d.num_trees(), ref.trees);
  std::remove(path.c_str());
}

TEST(EdgeSlab, ErrorsNameThePathAndOffset) {
  // Satellite 6: every way a slab file can be bad must be a clear
  // kInvalidInput naming the path and the byte offset — never a crash, a
  // silent partial load, or a size_t-underflow record count.
  const std::string path = ::testing::TempDir() + "/smpmsf_badslab.slab";
  const auto expect_invalid = [&](const std::string& label) {
    try {
      (void)dynamic::EdgeSlab::open(path);
      FAIL() << label << ": accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidInput) << label;
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << label << ": " << e.what();
      EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
          << label << ": " << e.what();
    }
  };

  const auto write_raw = [&](const std::string& bytes) {
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  };

  // mmap failure: the file does not exist at all.
  std::remove(path.c_str());
  EXPECT_THROW((void)dynamic::EdgeSlab::open(path), Error);

  // Shorter than the 24-byte header.
  write_raw("SMPB\x01");
  expect_invalid("short header");

  // Valid slab to corrupt from.
  EdgeList g(10);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  dynamic::EdgeSlab::write_file(path, g);
  std::string whole;
  {
    std::ifstream is(path, std::ios::binary);
    whole.assign(std::istreambuf_iterator<char>(is),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_EQ(whole.size(), 24u + 2 * 16u);

  write_raw("XXXX" + whole.substr(4));
  expect_invalid("bad magic");

  std::string bad_version = whole;
  bad_version[4] = 9;
  write_raw(bad_version);
  expect_invalid("unsupported version");

  // Truncated mid-record: size no longer matches the declared m.
  write_raw(whole.substr(0, whole.size() - 7));
  expect_invalid("truncated records");

  // Trailing garbage after the last record.
  write_raw(whole + "zz");
  expect_invalid("trailing bytes");

  // Record-level violations: self-loop, endpoint out of range, NaN weight.
  std::string self_loop = whole;
  std::memcpy(&self_loop[24 + 4], &self_loop[24], 4);  // v := u on record 0
  write_raw(self_loop);
  expect_invalid("self-loop record");

  std::string out_of_range = whole;
  const std::uint32_t huge = 1000;
  std::memcpy(&out_of_range[24 + 4], &huge, 4);
  write_raw(out_of_range);
  expect_invalid("endpoint out of range");

  std::string bad_weight = whole;
  const double nan = std::nan("");
  std::memcpy(&bad_weight[24 + 8], &nan, 8);
  write_raw(bad_weight);
  expect_invalid("non-finite weight");

  std::remove(path.c_str());
}

TEST(CanonicalizeParallel, KeepsWeightThenIdMinimalEdge) {
  EdgeList g(3);
  g.add_edge(0, 1, 5.0);  // id 0: loses to id 2 on weight
  g.add_edge(1, 2, 4.0);  // id 1: unique pair, kept
  g.add_edge(1, 0, 3.0);  // id 2: winner for {0,1}
  g.add_edge(0, 1, 3.0);  // id 3: ties id 2 on weight, loses on id
  g.add_edge(2, 1, 4.0);  // id 4: ties id 1 on weight, loses on id
  std::vector<EdgeId> kept;
  const EdgeList c = canonicalize_parallel_edges(g, &kept);
  EXPECT_EQ(kept, (std::vector<EdgeId>{1, 2}));
  ASSERT_EQ(c.num_edges(), 2u);
  EXPECT_EQ(c.edges[0].w, 4.0);
  EXPECT_EQ(c.edges[1].w, 3.0);
  EXPECT_EQ(c.num_vertices, 3u);
}

}  // namespace
