// Parallel LSD radix sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "pprim/radix_sort.hpp"
#include "pprim/rng.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

struct KeyedRec {
  std::uint32_t key;
  std::uint32_t seq;
  friend bool operator==(const KeyedRec&, const KeyedRec&) = default;
};

struct SeqRec {
  std::uint32_t seq;
  friend bool operator==(const SeqRec&, const SeqRec&) = default;
};

class RadixSortTest : public ::testing::TestWithParam<int> {};

TEST_P(RadixSortTest, SortsFullRange64BitKeys) {
  ThreadTeam team(GetParam());
  for (const std::size_t n : {0u, 1u, 2u, 1000u, 100000u}) {
    Rng rng(n + 3);
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) x = rng.next();
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    radix_sort_by_key(team, v, [](std::uint64_t x) { return x; });
    EXPECT_EQ(v, expect) << "n=" << n << " p=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, RadixSortTest, ::testing::Values(1, 2, 4, 8));

TEST(RadixSort, SkipsConstantBytes) {
  // Keys confined to 16 bits: still sorted correctly (and internally only
  // two passes run — verified indirectly through correctness + speed).
  ThreadTeam team(4);
  Rng rng(9);
  std::vector<std::uint64_t> v(50000);
  for (auto& x : v) x = rng.next_below(1 << 16);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  radix_sort_by_key(team, v, [](std::uint64_t x) { return x; });
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, StableOnStructs) {
  using Rec = KeyedRec;
  ThreadTeam team(4);
  Rng rng(11);
  std::vector<Rec> v(80000);
  for (std::uint32_t i = 0; i < v.size(); ++i) {
    v[i] = {static_cast<std::uint32_t>(rng.next_below(64)), i};
  }
  auto expect = v;
  std::stable_sort(expect.begin(), expect.end(),
                   [](const Rec& a, const Rec& b) { return a.key < b.key; });
  radix_sort_by_key(team, v, [](const Rec& r) {
    return static_cast<std::uint64_t>(r.key);
  });
  EXPECT_EQ(v, expect) << "LSD radix sort must be stable";
}

TEST(RadixSort, AllEqualKeysPreserveOrder) {
  using Rec = SeqRec;
  ThreadTeam team(3);
  std::vector<Rec> v(10000);
  for (std::uint32_t i = 0; i < v.size(); ++i) v[i] = {i};
  auto expect = v;
  radix_sort_by_key(team, v, [](const Rec&) { return std::uint64_t{7}; });
  EXPECT_EQ(v, expect);
}

TEST(RadixSort, PackedPairKeysMatchComparisonSort) {
  // The compact-graph use case: sort arcs by packed (u, v).
  struct Arc {
    std::uint32_t u, v;
    double w;
  };
  ThreadTeam team(4);
  Rng rng(13);
  std::vector<Arc> arcs(60000);
  for (auto& a : arcs) {
    a = {static_cast<std::uint32_t>(rng.next_below(500)),
         static_cast<std::uint32_t>(rng.next_below(500)), rng.next_double()};
  }
  auto expect = arcs;
  std::stable_sort(expect.begin(), expect.end(), [](const Arc& a, const Arc& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  radix_sort_by_key(team, arcs, [](const Arc& a) {
    return (static_cast<std::uint64_t>(a.u) << 32) | a.v;
  });
  for (std::size_t i = 0; i < arcs.size(); ++i) {
    ASSERT_EQ(arcs[i].u, expect[i].u) << i;
    ASSERT_EQ(arcs[i].v, expect[i].v) << i;
    ASSERT_EQ(arcs[i].w, expect[i].w) << i;
  }
}

}  // namespace
