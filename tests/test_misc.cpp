// Remaining small pieces: WeightOrder semantics, Padded layout, WallTimer,
// EdgeCollector behaviour through the public results, and option plumbing.
#include <gtest/gtest.h>

#include <thread>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "graph/types.hpp"
#include "pprim/cacheline.hpp"
#include "pprim/timer.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(WeightOrder, TotalOrderWithIdTieBreak) {
  const WeightOrder a{1.0, 5};
  const WeightOrder b{1.0, 9};
  const WeightOrder c{2.0, 1};
  EXPECT_TRUE(a < b) << "equal weights resolve by id";
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(b < a);
  EXPECT_FALSE(a < a);
  EXPECT_TRUE(a == (WeightOrder{1.0, 5}));
}

TEST(WeightOrder, NegativeAndInfiniteWeights) {
  const WeightOrder neg{-5.0, 0};
  const WeightOrder pos{5.0, 0};
  const WeightOrder inf{std::numeric_limits<double>::infinity(), 0};
  const WeightOrder ninf{-std::numeric_limits<double>::infinity(), 0};
  EXPECT_TRUE(neg < pos);
  EXPECT_TRUE(pos < inf);
  EXPECT_TRUE(ninf < neg);
}

TEST(Padded, SlotsOccupyDistinctCacheLines) {
  Padded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, kCacheLineBytes);
  }
  static_assert(sizeof(Padded<char>) % kCacheLineBytes == 0);
  static_assert(alignof(Padded<char>) == kCacheLineBytes);
}

TEST(WallTimer, MonotoneAndResets) {
  WallTimer t;
  const double a = t.elapsed_s();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double b = t.elapsed_s();
  EXPECT_GE(a, 0.0);
  EXPECT_GT(b, a);
  t.reset();
  EXPECT_LT(t.elapsed_s(), b);
}

TEST(MsfResult, EdgeIdsSortedAndParallelToEdges) {
  const EdgeList g = random_graph(1000, 4000, 5);
  for (const auto alg : core::kParallelAlgorithms) {
    const auto r = test::run_alg(g, alg, 3);
    ASSERT_EQ(r.edges.size(), r.edge_ids.size()) << core::to_string(alg);
    EXPECT_TRUE(std::is_sorted(r.edge_ids.begin(), r.edge_ids.end()))
        << core::to_string(alg) << ": canonical (sorted) id order";
    for (std::size_t i = 0; i < r.edges.size(); ++i) {
      const auto& orig = g.edges[r.edge_ids[i]];
      ASSERT_EQ(r.edges[i].w, orig.w);
      ASSERT_TRUE((r.edges[i].u == orig.u && r.edges[i].v == orig.v) ||
                  (r.edges[i].u == orig.v && r.edges[i].v == orig.u));
    }
  }
}

TEST(MsfOptions, ZeroAndNegativeThreadsRejected) {
  // Silent clamping hid caller bugs; thread counts are now validated up
  // front (see validate_request) and rejected as kInvalidInput.
  const EdgeList g = random_graph(200, 600, 7);
  for (const int threads : {0, -3}) {
    core::MsfOptions opts;
    opts.algorithm = core::Algorithm::kBorFAL;
    opts.threads = threads;
    try {
      (void)core::minimum_spanning_forest(g, opts);
      FAIL() << threads;
    } catch (const smp::Error& e) {
      EXPECT_EQ(e.code(), smp::ErrorCode::kInvalidInput) << threads;
    }
  }
}

TEST(StepTimes, TotalSumsParts) {
  core::StepTimes st;
  st.find_min = 1;
  st.connect = 2;
  st.compact = 3;
  st.other = 4;
  EXPECT_DOUBLE_EQ(st.total(), 10.0);
  core::StepTimes other = st;
  st += other;
  EXPECT_DOUBLE_EQ(st.total(), 20.0);
}

TEST(EdgeList, TotalWeightAndAccessors) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.5);
  g.add_edge(1, 2, 2.5);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.0);
}

}  // namespace
