// ServiceCore: session lifecycle, write coalescing, deadline budgets,
// admission control, store compaction — everything the tentpole promises,
// exercised in-process without a socket.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "serve/service_core.hpp"

namespace {

using namespace smp;
using namespace smp::graph;
using namespace smp::serve;

Request make(Op op, std::string session = {}) {
  Request r;
  r.op = op;
  r.session = std::move(session);
  return r;
}

Request insert_req(const std::string& session, std::vector<WEdge> edges) {
  Request r = make(Op::kInsert, session);
  r.insertions = std::move(edges);
  return r;
}

Request delete_req(const std::string& session,
                   std::vector<std::pair<VertexId, VertexId>> pairs) {
  Request r = make(Op::kDelete, session);
  r.deletions = std::move(pairs);
  return r;
}

TEST(ServeCore, SessionLifecycleAndReads) {
  ServiceCore svc;
  EXPECT_EQ(svc.call(make(Op::kPing)).status, Status::kOk);

  Request open = make(Op::kOpen, "g");
  open.num_vertices = 5;
  EXPECT_EQ(svc.call(open).status, Status::kOk);
  EXPECT_EQ(svc.call(open).status, Status::kAlreadyExists);

  Response w = svc.call(make(Op::kWeight, "g"));
  EXPECT_EQ(w.status, Status::kOk);
  EXPECT_EQ(w.trees, 5u);
  EXPECT_EQ(w.forest_edges, 0u);

  Response ins = svc.call(insert_req("g", {{0, 1, 1.5}, {1, 2, 2.0}}));
  EXPECT_EQ(ins.status, Status::kOk);
  EXPECT_TRUE(ins.applied);
  EXPECT_GE(ins.coalesced, 1u);
  EXPECT_EQ(ins.trees, 3u);
  EXPECT_DOUBLE_EQ(ins.weight, 3.5);

  Request conn = make(Op::kConnected, "g");
  conn.u = 0;
  conn.v = 2;
  EXPECT_TRUE(svc.call(conn).connected);
  conn.v = 4;
  EXPECT_FALSE(svc.call(conn).connected);

  Response edges = svc.call(make(Op::kForestEdges, "g"));
  EXPECT_EQ(edges.edges.size(), 2u);
  EXPECT_EQ(edges.edges_total, 2u);

  Response list = svc.call(make(Op::kList));
  EXPECT_EQ(list.sessions, std::vector<std::string>{"g"});

  EXPECT_EQ(svc.call(make(Op::kDrop, "g")).status, Status::kOk);
  EXPECT_EQ(svc.call(make(Op::kWeight, "g")).status, Status::kNotFound);
  EXPECT_EQ(svc.call(make(Op::kDrop, "g")).status, Status::kNotFound);
}

TEST(ServeCore, ValidatesRequests) {
  ServiceCore svc;
  Request open = make(Op::kOpen, "bad name!");
  open.num_vertices = 3;
  EXPECT_EQ(svc.call(open).status, Status::kInvalidInput);

  open = make(Op::kOpen, "g");
  EXPECT_EQ(svc.call(open).status, Status::kInvalidInput);  // no n, no file
  open.num_vertices = 3;
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  // Deleting an edge that is not live fails that request atomically.
  Response del = svc.call(delete_req("g", {{0, 1}}));
  EXPECT_EQ(del.status, Status::kInvalidInput);
  EXPECT_FALSE(del.applied);

  Request conn = make(Op::kConnected, "g");
  conn.u = 0;
  conn.v = 99;
  EXPECT_EQ(svc.call(conn).status, Status::kInvalidInput);

  EXPECT_EQ(svc.call(make(Op::kWeight, "nope")).status, Status::kNotFound);
}

TEST(ServeCore, CoalescesConcurrentWritesIntoOneBatch) {
  ServeOptions opts;
  opts.dispatchers = 4;
  opts.coalesce_window_s = 0.05;  // let the whole burst pile up
  ServiceCore svc(opts);
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 64;
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  constexpr int kWrites = 12;
  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::vector<Response> responses(kWrites);
  for (int i = 0; i < kWrites; ++i) {
    const bool ok = svc.submit(
        insert_req("g", {{static_cast<VertexId>(i), 63, 1.0 + i}}),
        [&, i](Response r) {
          std::lock_guard<std::mutex> lk(mu);
          responses[static_cast<std::size_t>(i)] = std::move(r);
          ++done;
          cv.notify_one();
        });
    ASSERT_TRUE(ok);
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done == kWrites; });
  }

  std::size_t max_coalesced = 0;
  for (const Response& r : responses) {
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_TRUE(r.applied);
    max_coalesced = std::max(max_coalesced, r.coalesced);
  }
  // The burst must not have paid one solve per request.
  EXPECT_GE(max_coalesced, 2u);
  const auto& m = svc.metrics();
  EXPECT_EQ(m.coalesced_writes.load(), static_cast<std::uint64_t>(kWrites));
  EXPECT_LT(m.apply_batches.load(), static_cast<std::uint64_t>(kWrites));
  EXPECT_GE(m.coalesce_size.count(), 1u);

  // All writes landed exactly once.
  Response w = svc.call(make(Op::kWeight, "g"));
  EXPECT_EQ(w.live_edges, static_cast<std::size_t>(kWrites));
  EXPECT_EQ(w.forest_edges, static_cast<std::size_t>(kWrites));
}

TEST(ServeCore, DeadlineExceededDoesNotPoisonTheSession) {
  ServeOptions opts;
  opts.msf.threads = 2;
  ServiceCore svc(opts);
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 2000;
  ASSERT_EQ(svc.call(open).status, Status::kOk);
  Request grow = insert_req("g", {});
  for (VertexId v = 1; v < 2000; ++v) {
    grow.insertions.push_back(WEdge{v - 1, v, 1.0 / v});
  }
  ASSERT_EQ(svc.call(grow).status, Status::kOk);
  const Response before = svc.call(make(Op::kWeight, "g"));

  // A recompute that cannot possibly finish inside its budget fails with
  // kDeadlineExceeded instead of wedging a dispatcher forever...
  Request re = make(Op::kRecompute, "g");
  re.deadline_s = 1e-7;
  const Response r = svc.call(re);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);

  // ...and the session answers the next requests with the intact forest.
  const Response after = svc.call(make(Op::kWeight, "g"));
  EXPECT_EQ(after.status, Status::kOk);
  EXPECT_EQ(after.weight, before.weight);
  EXPECT_EQ(after.forest_edges, before.forest_edges);

  // An unbudgeted recompute still works.
  EXPECT_EQ(svc.call(make(Op::kRecompute, "g")).status, Status::kOk);
  EXPECT_GE(svc.metrics().deadline_exceeded.load(), 1u);
}

TEST(ServeCore, ExpiredWriteIsDroppedAtomically) {
  ServiceCore svc;
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 4;
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  Request ins = insert_req("g", {{0, 1, 1.0}});
  ins.deadline_s = 1e-9;  // expires before any dispatcher can touch it
  const Response r = svc.call(ins);
  EXPECT_EQ(r.status, Status::kDeadlineExceeded);
  EXPECT_FALSE(r.applied);
  const Response w = svc.call(make(Op::kWeight, "g"));
  EXPECT_EQ(w.live_edges, 0u);
}

TEST(ServeCore, AdmissionControlShedsLoad) {
  ServeOptions opts;
  opts.dispatchers = 1;
  opts.queue_capacity = 2;
  opts.coalesce_window_s = 0.2;  // parks the only dispatcher in the window
  ServiceCore svc(opts);
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 4;
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  std::mutex mu;
  std::condition_variable cv;
  int done = 0;
  std::atomic<int> overloaded{0};
  int accepted = 0;
  const int kBurst = 8;
  // First write occupies the dispatcher (coalesce window), the rest pile
  // into the bounded queue until it rejects.
  for (int i = 0; i < kBurst; ++i) {
    const bool ok = svc.submit(
        insert_req("g", {{0, 1, 1.0 + i}}), [&](Response r) {
          if (r.status == Status::kOverloaded) ++overloaded;
          std::lock_guard<std::mutex> lk(mu);
          ++done;
          cv.notify_one();
        });
    if (ok) ++accepted;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return done == kBurst; });
  }
  EXPECT_LT(accepted, kBurst);
  EXPECT_GT(overloaded.load(), 0);
  EXPECT_EQ(svc.metrics().rejected_overload.load(),
            static_cast<std::uint64_t>(kBurst - accepted));
}

TEST(ServeCore, CompactionKicksInBelowLiveRatio) {
  ServeOptions opts;
  opts.compact_min_slots = 64;
  opts.compact_live_ratio = 0.5;
  ServiceCore svc(opts);
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 100;
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  Request grow = insert_req("g", {});
  for (VertexId v = 1; v < 100; ++v) {
    grow.insertions.push_back(WEdge{v - 1, v, 1.0});
  }
  ASSERT_EQ(svc.call(grow).status, Status::kOk);  // fully live: no compact

  Request del = delete_req("g", {});
  for (VertexId v = 1; v < 60; ++v) del.deletions.emplace_back(v - 1, v);
  const Response d = svc.call(del);
  ASSERT_EQ(d.status, Status::kOk);
  EXPECT_EQ(d.live_edges, 40u);

  // The renumbered forest still serves and solves identically.  (The
  // flusher's compaction check runs under the exclusive state lock before
  // the write responses go out, so this read always sees its outcome.)
  const Response snap = svc.call(make(Op::kSnapshot, "g"));
  ASSERT_EQ(snap.status, Status::kOk);
  ASSERT_NE(snap.snapshot, nullptr);
  // 99 slots >= 64 and 40/99 < 0.5: the flush compacted the store.
  EXPECT_GE(svc.metrics().compactions.load(), 1u);
  EXPECT_GE(svc.metrics().slots_reclaimed.load(), 59u);
  EXPECT_EQ(snap.snapshot->live.num_edges(), 40u);
  for (const EdgeId id : snap.snapshot->forest_ids) EXPECT_LT(id, 40u);
}

TEST(ServeCore, ExplicitCompactRequest) {
  ServiceCore svc;
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 10;
  ASSERT_EQ(svc.call(open).status, Status::kOk);
  ASSERT_EQ(svc.call(insert_req("g", {{0, 1, 1.0}, {1, 2, 2.0}})).status,
            Status::kOk);
  ASSERT_EQ(svc.call(delete_req("g", {{0, 1}})).status, Status::kOk);
  const Response c = svc.call(make(Op::kCompact, "g"));
  EXPECT_EQ(c.status, Status::kOk);
  EXPECT_EQ(c.remapped, 1u);
  EXPECT_EQ(c.live_edges, 1u);
  EXPECT_GE(svc.metrics().compactions.load(), 1u);
}

TEST(ServeCore, StatsJsonHasTheAdvertisedShape) {
  ServiceCore svc;
  ASSERT_EQ(svc.call(make(Op::kPing)).status, Status::kOk);
  const Response stats = svc.call(make(Op::kStats));
  ASSERT_EQ(stats.status, Status::kOk);
  for (const char* key :
       {"\"build\"", "\"compiler\"", "\"queue\"", "\"coalescing\"",
        "\"apply_batches\"", "\"batch_size\"", "\"deadline_exceeded\"",
        "\"ops\"", "\"ping\"", "\"p99\""}) {
    EXPECT_NE(stats.stats_json.find(key), std::string::npos) << key;
  }
}

TEST(ServeCore, ShutdownDrainsAndRejectsLateSubmits) {
  ServiceCore svc;
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 8;
  ASSERT_EQ(svc.call(open).status, Status::kOk);
  svc.shutdown();
  const Response r = svc.call(make(Op::kWeight, "g"));
  EXPECT_EQ(r.status, Status::kShuttingDown);
  EXPECT_GE(svc.metrics().rejected_shutdown.load(), 1u);
  svc.shutdown();  // idempotent
}

TEST(ServeCore, ShardedSessionsBehaveLikeSinglePool) {
  ServeOptions opts;
  opts.shards = 3;
  opts.dispatchers = 2;
  ServiceCore svc(opts);
  EXPECT_EQ(svc.shard_count(), 3);

  // Sessions land on shards by name hash; every one must behave exactly as
  // under the single-pool layout — same answers, same validation.
  for (const char* name : {"alpha", "bravo", "charlie", "delta", "echo"}) {
    Request open = make(Op::kOpen, name);
    open.num_vertices = 10;
    ASSERT_EQ(svc.call(open).status, Status::kOk) << name;
    Request ins = insert_req(name, {{0, 1, 1.0}, {1, 2, 2.0}});
    const Response r = svc.call(ins);
    ASSERT_EQ(r.status, Status::kOk) << name;
    EXPECT_DOUBLE_EQ(r.weight, 3.0);
    Request conn = make(Op::kConnected, name);
    conn.u = 0;
    conn.v = 2;
    EXPECT_TRUE(svc.call(conn).connected);
  }
  const Response list = svc.call(make(Op::kList));
  EXPECT_EQ(list.sessions.size(), 5u);

  // health reports one queue gauge per shard.
  const Response health = svc.call(make(Op::kHealth));
  ASSERT_EQ(health.status, Status::kOk);
  EXPECT_EQ(health.shard_depths.size(), 3u);
  svc.shutdown();
}

TEST(ServeCore, AutoShardCountIsPositive) {
  ServeOptions opts;
  opts.shards = 0;  // auto-size from hardware threads
  ServiceCore svc(opts);
  EXPECT_GE(svc.shard_count(), 1);
  EXPECT_EQ(svc.call(make(Op::kPing)).status, Status::kOk);
  svc.shutdown();
}

TEST(ServeCore, HealthReportsEpochAndListeners) {
  ServiceCore svc;
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 8;
  ASSERT_EQ(svc.call(open).status, Status::kOk);
  ASSERT_EQ(svc.call(insert_req("g", {{0, 1, 1.0}})).status, Status::kOk);

  svc.add_listener("tcp:1234");
  svc.add_listener("uds:/tmp/test.sock");
  Response health = svc.call(make(Op::kHealth, "g"));
  ASSERT_EQ(health.status, Status::kOk);
  EXPECT_EQ(health.epoch, 1u);  // the committed version of session g
  ASSERT_EQ(health.listeners.size(), 2u);
  svc.remove_listener("tcp:1234");
  health = svc.call(make(Op::kHealth));
  EXPECT_EQ(health.listeners.size(), 1u);
  svc.shutdown();
}

TEST(ServeCore, StatsJsonNestsShardAndServingGauges) {
  ServeOptions opts;
  opts.shards = 2;
  ServiceCore svc(opts);
  ASSERT_EQ(svc.call(make(Op::kPing)).status, Status::kOk);
  const Response stats = svc.call(make(Op::kStats));
  ASSERT_EQ(stats.status, Status::kOk);
  for (const char* key :
       {"\"shards\"", "\"depth\"", "\"serving\"", "\"reads_inline\"",
        "\"rejected_rate_limited\"", "\"snapshots_published\"",
        "\"epochs_reclaimed\""}) {
    EXPECT_NE(stats.stats_json.find(key), std::string::npos) << key;
  }
  svc.shutdown();
}

TEST(ServeCore, PerClientRateLimitShedsWritersButNeverReaders) {
  ServeOptions opts;
  opts.rate_limit_rps = 1;  // one write per second per client
  opts.rate_limit_burst = 2;
  ServiceCore svc(opts);
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 32;
  open.client_id = "admin";
  ASSERT_EQ(svc.call(open).status, Status::kOk);

  // A client hammering writes exhausts its bucket fast...
  int limited = 0;
  for (int i = 0; i < 8; ++i) {
    Request ins = insert_req(
        "g", {{static_cast<VertexId>(i), static_cast<VertexId>(i + 1), 1.0}});
    ins.client_id = "writer-1";
    const Response r = svc.call(ins);
    if (r.status == Status::kRateLimited) ++limited;
  }
  EXPECT_GT(limited, 0);
  EXPECT_GT(svc.metrics().rejected_rate_limited.load(), 0u);

  // ...while its reads (the priority lane) always get through,
  for (int i = 0; i < 20; ++i) {
    Request w = make(Op::kWeight, "g");
    w.client_id = "writer-1";
    EXPECT_EQ(svc.call(w).status, Status::kOk);
  }
  // and unattributed requests (in-process callers) are never limited.
  for (int i = 0; i < 5; ++i) {
    const Response r = svc.call(
        insert_req("g", {{static_cast<VertexId>(i), 31, 2.0}}));
    EXPECT_EQ(r.status, Status::kOk);
  }
  svc.shutdown();
}

TEST(ServeCore, InlineReadLaneServesWithoutQueueing) {
  ServiceCore svc;
  Request open = make(Op::kOpen, "g");
  open.num_vertices = 8;
  ASSERT_EQ(svc.call(open).status, Status::kOk);
  const std::uint64_t before = svc.metrics().reads_inline.load();
  ASSERT_EQ(svc.call(make(Op::kWeight, "g")).status, Status::kOk);
  EXPECT_GT(svc.metrics().reads_inline.load(), before);
  svc.shutdown();
}

}  // namespace
