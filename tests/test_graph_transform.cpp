// Graph surgery utilities: induced subgraphs, largest component, weight
// negation (maximum spanning forest).
#include <gtest/gtest.h>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "graph/transform.hpp"
#include "seq/seq_msf.hpp"
#include "seq/union_find.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(InducedSubgraph, KeepsExactlyInternalEdges) {
  EdgeList g(5);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(2, 3, 3);
  g.add_edge(3, 4, 4);
  g.add_edge(0, 4, 5);
  std::vector<bool> keep = {true, true, false, true, true};
  std::vector<VertexId> back;
  const EdgeList s = induced_subgraph(g, keep, &back);
  EXPECT_EQ(s.num_vertices, 4u);
  EXPECT_EQ(back, (std::vector<VertexId>{0, 1, 3, 4}));
  // Surviving edges: (0,1,1), (3,4,4)->(2,3), (0,4,5)->(0,3).
  ASSERT_EQ(s.num_edges(), 3u);
  EXPECT_EQ(s.edges[0], (WEdge{0, 1, 1}));
  EXPECT_EQ(s.edges[1], (WEdge{2, 3, 4}));
  EXPECT_EQ(s.edges[2], (WEdge{0, 3, 5}));
}

TEST(InducedSubgraph, EmptyKeepAndFullKeep) {
  const EdgeList g = random_graph(100, 300, 1);
  const EdgeList none = induced_subgraph(g, std::vector<bool>(100, false));
  EXPECT_EQ(none.num_vertices, 0u);
  EXPECT_EQ(none.num_edges(), 0u);
  const EdgeList all = induced_subgraph(g, std::vector<bool>(100, true));
  EXPECT_EQ(all.num_vertices, g.num_vertices);
  EXPECT_EQ(all.edges, g.edges);
}

TEST(LargestComponent, PicksTheBiggestAndIsConnected) {
  // Two random blobs of different size plus isolated vertices.
  EdgeList g(350);
  const EdgeList a = random_graph(200, 800, 2);  // likely one big component
  const EdgeList b = random_graph(100, 400, 3);
  for (const auto& e : a.edges) g.add_edge(e.u, e.v, e.w);
  for (const auto& e : b.edges) g.add_edge(e.u + 200, e.v + 200, e.w);
  std::vector<VertexId> back;
  const EdgeList big = largest_component(g, &back);
  EXPECT_EQ(num_components(big), 1u);
  EXPECT_GT(big.num_vertices, 150u);
  // All mapped-back vertices must come from the first blob.
  for (const VertexId v : back) EXPECT_LT(v, 200u);
}

TEST(NegateWeights, GivesMaximumSpanningForest) {
  const EdgeList g = random_graph(500, 2500, 5);
  const auto max_forest = seq::kruskal_msf(negate_weights(g));
  // Compare against brute force: Kruskal over descending weights.
  std::vector<EdgeId> order(g.edges.size());
  for (EdgeId i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](EdgeId x, EdgeId y) {
    return WeightOrder{-g.edges[x].w, x} < WeightOrder{-g.edges[y].w, y};
  });
  seq::UnionFind uf(g.num_vertices);
  double expect = 0;
  for (const EdgeId i : order) {
    if (uf.unite(g.edges[i].u, g.edges[i].v)) expect += g.edges[i].w;
  }
  EXPECT_NEAR(-max_forest.total_weight, expect, 1e-9 * std::abs(expect));
  // And it is at least as heavy as the minimum forest.
  const auto min_forest = seq::kruskal_msf(g);
  EXPECT_GE(-max_forest.total_weight, min_forest.total_weight);
}

TEST(NegateWeights, EdgeIdsPreserved) {
  const EdgeList g = random_graph(200, 600, 7);
  const EdgeList neg = negate_weights(g);
  ASSERT_EQ(neg.num_edges(), g.num_edges());
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(neg.edges[i].u, g.edges[i].u);
    EXPECT_EQ(neg.edges[i].v, g.edges[i].v);
    EXPECT_DOUBLE_EQ(neg.edges[i].w, -g.edges[i].w);
  }
}

TEST(Transform, PipelineLargestComponentThenMsf) {
  const EdgeList g = random_graph(4000, 3000, 9);  // fragmented
  std::vector<VertexId> back;
  const EdgeList big = largest_component(g, &back);
  const auto msf = test::run_alg(big, core::Algorithm::kBorFAL, 4);
  EXPECT_EQ(msf.num_trees, 1u);
  EXPECT_EQ(msf.edges.size(), static_cast<std::size_t>(big.num_vertices) - 1);
}

}  // namespace
