// End-to-end smoke: every algorithm returns the identical forest on a small
// random graph, validated structurally.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "seq/seq_msf.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(Smoke, AllAlgorithmsAgreeOnRandomGraph) {
  const EdgeList g = random_graph(2000, 8000, /*seed=*/42);
  const MsfResult ref = seq::kruskal_msf(g);
  const auto check = validate_spanning_forest(g, ref.edges);
  ASSERT_TRUE(check.ok) << check.error;

  std::vector<EdgeId> ref_ids = ref.edge_ids;
  std::sort(ref_ids.begin(), ref_ids.end());

  for (const auto alg : core::kParallelAlgorithms) {
    for (const int threads : {1, 4}) {
      core::MsfOptions opts;
      opts.algorithm = alg;
      opts.threads = threads;
      opts.bc_base_size = 64;
      const MsfResult r = core::minimum_spanning_forest(g, opts);
      std::vector<EdgeId> ids = r.edge_ids;
      std::sort(ids.begin(), ids.end());
      EXPECT_EQ(ids, ref_ids) << to_string(alg) << " threads=" << threads;
      EXPECT_NEAR(r.total_weight, ref.total_weight, 1e-9 * ref.total_weight)
          << to_string(alg) << " threads=" << threads;
    }
  }
}

}  // namespace
