// Parallel connected components (extension module).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/connected_components.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "seq/union_find.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

/// Reference labels via union-find, densified in first-seen-root order is
/// not directly comparable; compare as partitions instead.
bool same_partition(const std::vector<VertexId>& a, const std::vector<VertexId>& b) {
  if (a.size() != b.size()) return false;
  std::vector<VertexId> map_ab(a.size(), kInvalidVertex);
  std::vector<VertexId> map_ba(b.size(), kInvalidVertex);
  for (std::size_t v = 0; v < a.size(); ++v) {
    if (map_ab[a[v]] == kInvalidVertex) map_ab[a[v]] = b[v];
    if (map_ba[b[v]] == kInvalidVertex) map_ba[b[v]] = a[v];
    if (map_ab[a[v]] != b[v] || map_ba[b[v]] != a[v]) return false;
  }
  return true;
}

std::vector<VertexId> reference_labels(const EdgeList& g) {
  seq::UnionFind uf(g.num_vertices);
  for (const auto& e : g.edges) uf.unite(e.u, e.v);
  std::vector<VertexId> lbl(g.num_vertices);
  for (VertexId v = 0; v < g.num_vertices; ++v) lbl[v] = uf.find(v);
  return lbl;
}

class CcThreads : public ::testing::TestWithParam<int> {};

TEST_P(CcThreads, MatchesUnionFindOnZoo) {
  const int threads = GetParam();
  const EdgeList graphs[] = {
      random_graph(5000, 3000, 1),   // fragmented
      random_graph(5000, 25000, 2),  // near-connected
      mesh2d_p(60, 60, 0.5, 3),
      structured_graph(0, 1024, 4),
      geometric_knn(2000, 4, 5),
      EdgeList(100),  // no edges at all
  };
  for (const auto& g : graphs) {
    const auto cc = core::connected_components(g, threads);
    ASSERT_EQ(cc.label.size(), g.num_vertices);
    EXPECT_EQ(cc.num_components, num_components(g));
    EXPECT_TRUE(same_partition(cc.label, reference_labels(g)));
    // Labels are dense in [0, num_components).
    for (const VertexId l : cc.label) ASSERT_LT(l, cc.num_components);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, CcThreads, ::testing::Values(1, 2, 4, 8));

TEST(Cc, DeterministicAcrossThreadCounts) {
  const EdgeList g = random_graph(10000, 15000, 9);
  const auto base = core::connected_components(g, 1);
  for (const int threads : {2, 4, 8}) {
    const auto cc = core::connected_components(g, threads);
    EXPECT_EQ(cc.label, base.label) << "hook-to-smaller makes labels "
                                       "scheduling-independent";
  }
}

TEST(Cc, EmptyGraph) {
  const auto cc = core::connected_components(EdgeList(0), 4);
  EXPECT_EQ(cc.num_components, 0u);
  EXPECT_TRUE(cc.label.empty());
}

TEST(Cc, SingleComponentChain) {
  EdgeList g(10000);
  for (VertexId v = 1; v < 10000; ++v) g.add_edge(v - 1, v, 1.0);
  const auto cc = core::connected_components(g, 4);
  EXPECT_EQ(cc.num_components, 1u);
  for (const VertexId l : cc.label) ASSERT_EQ(l, 0u);
}

TEST(Cc, IsolatedVerticesEachOwnComponent) {
  const auto cc = core::connected_components(EdgeList(50), 3);
  EXPECT_EQ(cc.num_components, 50u);
  std::vector<VertexId> sorted = cc.label;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < 50; ++v) EXPECT_EQ(sorted[v], v);
}

}  // namespace
