// The forest validator itself: accepts real MSFs and rejects each corruption.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "seq/seq_msf.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

EdgeList diamond() {
  // 0-1 (1.0), 1-2 (2.0), 2-3 (3.0), 3-0 (4.0), 0-2 (5.0)
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(2, 3, 3.0);
  g.add_edge(3, 0, 4.0);
  g.add_edge(0, 2, 5.0);
  return g;
}

TEST(Validate, AcceptsTrueMsf) {
  const EdgeList g = diamond();
  const auto msf = seq::kruskal_msf(g);
  const auto chk = validate_spanning_forest(g, msf.edges);
  EXPECT_TRUE(chk.ok) << chk.error;
  EXPECT_EQ(chk.num_trees, 1u);
  EXPECT_DOUBLE_EQ(chk.total_weight, 6.0);
}

TEST(Validate, RejectsCycle) {
  const EdgeList g = diamond();
  const std::vector<WEdge> cyc = {
      {0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.0}, {3, 0, 4.0}};
  const auto chk = validate_spanning_forest(g, cyc);
  EXPECT_FALSE(chk.ok);
  EXPECT_NE(chk.error.find("cycle"), std::string::npos);
}

TEST(Validate, RejectsNonSpanning) {
  const EdgeList g = diamond();
  const std::vector<WEdge> partial = {{0, 1, 1.0}, {1, 2, 2.0}};
  const auto chk = validate_spanning_forest(g, partial);
  EXPECT_FALSE(chk.ok);
  EXPECT_NE(chk.error.find("span"), std::string::npos);
}

TEST(Validate, RejectsForeignEdge) {
  const EdgeList g = diamond();
  const std::vector<WEdge> fake = {{0, 1, 1.0}, {1, 2, 2.0}, {1, 3, 2.5}};
  const auto chk = validate_spanning_forest(g, fake);
  EXPECT_FALSE(chk.ok);
  EXPECT_NE(chk.error.find("not present"), std::string::npos);
}

TEST(Validate, RejectsWrongWeightOnRealEndpoints) {
  const EdgeList g = diamond();
  const std::vector<WEdge> fake = {{0, 1, 1.0}, {1, 2, 2.0}, {2, 3, 3.5}};
  const auto chk = validate_spanning_forest(g, fake);
  EXPECT_FALSE(chk.ok);
}

TEST(Validate, RejectsDuplicatedEdge) {
  const EdgeList g = diamond();
  // Same graph edge listed twice: acyclicity (or membership multiset) fails.
  const std::vector<WEdge> dup = {{0, 1, 1.0}, {0, 1, 1.0}, {2, 3, 3.0}};
  const auto chk = validate_spanning_forest(g, dup);
  EXPECT_FALSE(chk.ok);
}

TEST(Validate, DisconnectedGraphNeedsPerComponentSpanning) {
  EdgeList g(6);  // two triangles
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  g.add_edge(3, 4, 1.5);
  g.add_edge(4, 5, 2.5);
  g.add_edge(3, 5, 3.5);
  const auto msf = seq::kruskal_msf(g);
  const auto chk = validate_spanning_forest(g, msf.edges);
  EXPECT_TRUE(chk.ok) << chk.error;
  EXPECT_EQ(chk.num_trees, 2u);
}

TEST(CutProperty, HoldsForTrueMsf) {
  const EdgeList g = random_graph(60, 200, 21);
  const auto msf = seq::kruskal_msf(g);
  std::string err;
  EXPECT_TRUE(verify_cut_property(g, msf.edges, &err)) << err;
}

TEST(CutProperty, FailsForNonMinimumSpanningTree) {
  // Triangle 0-1 (1), 1-2 (2), 0-2 (3).  The tree {(0,1), (0,2)} spans but
  // is not minimum: cutting (0,2) separates {0,1} from {2}, and the lighter
  // edge (1,2) crosses that cut.
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  const std::vector<WEdge> bad = {{0, 1, 1.0}, {0, 2, 3.0}};
  ASSERT_TRUE(validate_spanning_forest(g, bad).ok) << "spanning but not minimum";
  std::string err;
  EXPECT_FALSE(verify_cut_property(g, bad, &err));
  EXPECT_FALSE(err.empty());
}

TEST(Validate, EmptyGraphEmptyForest) {
  const EdgeList g(0);
  const auto chk = validate_spanning_forest(g, {});
  EXPECT_TRUE(chk.ok);
  EXPECT_EQ(chk.num_trees, 0u);
}

TEST(Validate, IsolatedVerticesNeedNoEdges) {
  const EdgeList g(4);  // no edges at all
  const auto chk = validate_spanning_forest(g, {});
  EXPECT_TRUE(chk.ok);
  EXPECT_EQ(chk.num_trees, 4u);
}

}  // namespace
