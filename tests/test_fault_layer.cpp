// Fault-tolerant execution layer: exception-safe SPMD regions (capture,
// poisoned-barrier release, rethrow-on-caller), the ExecutionBudget
// (cancellation / deadline / arena memory cap), sequential degradation, and
// the deterministic fault-injection harness that drives all of it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <new>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/bor_uf.hpp"
#include "core/error.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/validate.hpp"
#include "pprim/arena.hpp"
#include "pprim/fault.hpp"
#include "pprim/thread_team.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

// ---------------------------------------------------------------------------
// ThreadTeam exception safety

TEST(TeamFault, WorkerExceptionPropagatesAndTeamSurvives) {
  ThreadTeam team(4);
  for (int round = 0; round < 5; ++round) {
    EXPECT_THROW(team.run([&](TeamCtx& ctx) {
      if (ctx.tid() == 2) throw std::runtime_error("boom");
    }),
                 std::runtime_error);
    // The team must keep working after an aborted region.
    std::atomic<int> ran{0};
    team.run([&](TeamCtx&) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4) << "round " << round;
  }
}

TEST(TeamFault, ThrowBeforeBarrierReleasesWaitingSiblings) {
  // Three threads reach the barrier and block; the fourth throws instead of
  // arriving.  Without the poisoned release this deadlocks forever.
  ThreadTeam team(4);
  EXPECT_THROW(team.run([&](TeamCtx& ctx) {
    if (ctx.tid() == 1) throw std::bad_alloc();
    ctx.barrier();
    ctx.barrier();  // never reached; siblings unwind via RegionPoisoned
  }),
               std::bad_alloc);
  // Barriers must work again in the next region.
  std::atomic<int> phase1{0};
  std::atomic<int> failures{0};
  team.run([&](TeamCtx& ctx) {
    phase1.fetch_add(1);
    ctx.barrier();
    if (phase1.load() != 4) failures.fetch_add(1);
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(TeamFault, CallerExceptionReleasesWorkersAtBarrier) {
  ThreadTeam team(4);
  EXPECT_THROW(team.run([&](TeamCtx& ctx) {
    if (ctx.tid() == 0) throw std::logic_error("caller dies");
    ctx.barrier();
  }),
               std::logic_error);
  std::atomic<int> ran{0};
  team.run([&](TeamCtx&) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 4);
}

TEST(TeamFault, AllThreadsThrowingReportsExactlyOne) {
  ThreadTeam team(8);
  try {
    team.run([&](TeamCtx& ctx) {
      throw std::runtime_error("thrower " + std::to_string(ctx.tid()));
    });
    FAIL() << "expected a throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("thrower "), std::string::npos);
  }
}

TEST(TeamFault, SingleThreadTeamPropagatesInline) {
  ThreadTeam team(1);
  EXPECT_THROW(
      team.run([](TeamCtx&) { throw std::invalid_argument("inline"); }),
      std::invalid_argument);
  int ran = 0;
  team.run([&](TeamCtx&) { ++ran; });
  EXPECT_EQ(ran, 1);
}

TEST(TeamFault, RepeatedFaultyRegionsUnderChurn) {
  // Alternate throwing and clean regions many times: any leak of poisoned
  // barrier state across regions shows up as a deadlock (test timeout) or a
  // wrong phase count.
  ThreadTeam team(5);
  for (int round = 0; round < 50; ++round) {
    const int thrower = round % 5;
    EXPECT_THROW(team.run([&](TeamCtx& ctx) {
      if (ctx.tid() == thrower) throw std::runtime_error("x");
      ctx.barrier();
    }),
                 std::runtime_error);
    std::atomic<int> count{0};
    std::atomic<int> failures{0};
    team.run([&](TeamCtx& ctx) {
      count.fetch_add(1);
      ctx.barrier();
      if (count.load() != 5) failures.fetch_add(1);
    });
    EXPECT_EQ(failures.load(), 0) << "round " << round;
  }
}

TEST(SenseBarrierPoison, ReleasesWaiterWithFailure) {
  SenseBarrier b(2);
  std::atomic<int> result{-1};
  std::thread waiter([&] { result.store(b.arrive_and_wait() ? 1 : 0); });
  // Give the waiter time to block, then poison instead of arriving.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b.poison();
  waiter.join();
  EXPECT_EQ(result.load(), 0);
  EXPECT_TRUE(b.poisoned());
  b.reset();
  EXPECT_FALSE(b.poisoned());
}

// ---------------------------------------------------------------------------
// Fault injection into the five parallel algorithms

class FaultInjection : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::disarm_all(); }
};

using DirectEntry = graph::MsfResult (*)(ThreadTeam&, const EdgeList&,
                                         const core::MsfOptions&);

struct AlgFaultCase {
  const char* name;
  DirectEntry entry;
  const char* site;  ///< a fault point *inside* one of its parallel regions
};

const AlgFaultCase kAlgFaultCases[] = {
    {"Bor-EL", &core::bor_el_msf, "bor-el.connect.region"},
    {"Bor-AL", &core::bor_al_msf, "bor-al.connect.region"},
    {"Bor-ALM", &core::bor_alm_msf, "arena.alloc"},
    {"Bor-FAL", &core::bor_fal_msf, "bor-fal.connect.region"},
    {"MST-BC", &core::mst_bc_msf, "mst-bc.step3.region"},
};

TEST_F(FaultInjection, BadAllocInEveryParallelAlgorithmIsCatchable) {
  const EdgeList g = random_graph(4000, 16000, 11);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  for (const auto& c : kAlgFaultCases) {
    ThreadTeam team(4);
    core::MsfOptions opts;
    opts.threads = 4;
    opts.bc_base_size = 32;  // keep MST-BC in its parallel phase
    // Deferred compaction only touches Bor-ALM's arenas during a full
    // rebuild; an aggressive live threshold forces one on this small graph
    // so the arena.alloc site still fires on the deferred default path.
    opts.compact_live_threshold = 0.99;
    FaultInjector::arm(c.site, FaultKind::kBadAlloc);
    EXPECT_THROW((void)c.entry(team, g, opts), std::bad_alloc) << c.name;
    EXPECT_GE(FaultInjector::hits(c.site), 1u) << c.name;
    FaultInjector::disarm_all();
    // No terminate, no hung barrier — and the same team solves cleanly.
    EXPECT_EQ(test::sorted_ids(c.entry(team, g, opts)), ref) << c.name;
  }
}

// The fused-iteration refactor moved compact-graph into the same SPMD region
// as find-min and connect-components: a throw there happens with the team
// deep inside a barrier-synchronized region, so the poisoned-barrier release
// must unwind every sibling.  One case per converted algorithm.
const AlgFaultCase kCompactRegionCases[] = {
    {"Bor-EL", &core::bor_el_msf, "bor-el.compact.region"},
    {"Bor-AL", &core::bor_al_msf, "bor-al.compact.region"},
    {"Bor-ALM", &core::bor_alm_msf, "bor-al.compact.region"},
    {"Bor-FAL", &core::bor_fal_msf, "bor-fal.compact.region"},
    {"MST-BC", &core::mst_bc_msf, "mst-bc.compact.region"},
};

TEST_F(FaultInjection, CompactFaultInsideFusedRegionUnwinds) {
  const EdgeList g = random_graph(4000, 16000, 18);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  for (const auto& c : kCompactRegionCases) {
    ThreadTeam team(4);
    core::MsfOptions opts;
    opts.threads = 4;
    opts.bc_base_size = 32;  // keep MST-BC in its parallel phase
    FaultInjector::arm(c.site, FaultKind::kBadAlloc);
    EXPECT_THROW((void)c.entry(team, g, opts), std::bad_alloc) << c.name;
    EXPECT_GE(FaultInjector::hits(c.site), 1u) << c.name;
    FaultInjector::disarm_all();
    // No terminate, no hung barrier — and the same team solves cleanly.
    EXPECT_EQ(test::sorted_ids(c.entry(team, g, opts)), ref) << c.name;
  }
}

TEST_F(FaultInjection, BorUfCompactFaultInsideFusedRegionUnwinds) {
  // Bor-UF has its own entry signature (no options), so it gets its own case.
  const EdgeList g = random_graph(4000, 16000, 19);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  ThreadTeam team(4);
  FaultInjector::arm("bor-uf.compact.region", FaultKind::kBadAlloc);
  EXPECT_THROW((void)core::bor_uf_msf(team, g), std::bad_alloc);
  EXPECT_GE(FaultInjector::hits("bor-uf.compact.region"), 1u);
  FaultInjector::disarm_all();
  EXPECT_EQ(test::sorted_ids(core::bor_uf_msf(team, g)), ref);
}

TEST_F(FaultInjection, LaterIterationFaultAlsoUnwinds) {
  const EdgeList g = random_graph(4000, 16000, 12);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  ThreadTeam team(4);
  core::MsfOptions opts;
  opts.threads = 4;
  // The find-min fault point fires once per Borůvka iteration; skip the
  // first so the fault lands mid-algorithm with live intermediate state.
  FaultInjector::arm("bor-el.find-min", FaultKind::kBadAlloc, /*skip=*/1);
  EXPECT_THROW((void)core::bor_el_msf(team, g, opts), std::bad_alloc);
  EXPECT_EQ(FaultInjector::hits("bor-el.find-min"), 2u);
  FaultInjector::disarm_all();
  EXPECT_EQ(test::sorted_ids(core::bor_el_msf(team, g, opts)), ref);
}

TEST_F(FaultInjection, RuntimeErrorKindPropagatesTyped) {
  const EdgeList g = random_graph(2000, 8000, 13);
  ThreadTeam team(3);
  core::MsfOptions opts;
  opts.threads = 3;
  FaultInjector::arm("bor-fal.connect.region", FaultKind::kRuntimeError);
  try {
    (void)core::bor_fal_msf(team, g, opts);
    FAIL() << "expected injected runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bor-fal.connect.region"),
              std::string::npos);
  }
}

TEST_F(FaultInjection, DispatcherDegradesInjectedBadAllocToKruskal) {
  // Through the public API an allocation failure is not fatal: the request
  // degrades to sequential Kruskal and says so in the result.
  const EdgeList g = random_graph(3000, 12000, 14);
  FaultInjector::arm("bor-el.compact", FaultKind::kBadAlloc);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorEL;
  opts.threads = 4;
  const auto r = core::minimum_spanning_forest(g, opts);
  EXPECT_TRUE(r.degraded_to_sequential);
  EXPECT_EQ(test::sorted_ids(r), test::sorted_ids(seq::kruskal_msf(g)));
}

// ---------------------------------------------------------------------------
// ExecutionBudget: cancellation and deadlines

TEST(Budget, CheckThrowsTypedErrors) {
  ExecutionBudget b;
  EXPECT_NO_THROW(b.check("idle"));
  b.request_cancel();
  EXPECT_TRUE(b.cancel_requested());
  try {
    b.check("here");
    FAIL() << "expected cancellation";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
    EXPECT_NE(std::string(e.what()).find("here"), std::string::npos);
  }
}

TEST(Budget, PreCancelledRequestFailsFastForEveryParallelAlgorithm) {
  const EdgeList g = random_graph(2000, 8000, 15);
  ExecutionBudget budget;
  budget.request_cancel();
  for (const auto alg : core::kParallelAlgorithms) {
    core::MsfOptions opts;
    opts.algorithm = alg;
    opts.threads = 4;
    opts.budget = &budget;
    try {
      (void)core::minimum_spanning_forest(g, opts);
      FAIL() << core::to_string(alg);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kCancelled) << core::to_string(alg);
    }
  }
}

TEST(Budget, DeadlineZeroTripsWithinOneIterationCheckpoint) {
  // 200k-vertex input: a deadline of 0 must surface kDeadlineExceeded at the
  // first checkpoint of every parallel algorithm — directly at the algorithm
  // entry points, so the per-iteration checks themselves are exercised.
  const EdgeList g = random_graph(200000, 600000, 16);
  ExecutionBudget budget;
  budget.set_deadline_after(0);
  for (const auto& c : kAlgFaultCases) {
    ThreadTeam team(4);
    core::MsfOptions opts;
    opts.threads = 4;
    opts.budget = &budget;
    try {
      (void)c.entry(team, g, opts);
      FAIL() << c.name;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded) << c.name;
    }
    // The team unwound cleanly: it still runs regions.
    std::atomic<int> ran{0};
    team.run([&](TeamCtx&) { ran.fetch_add(1); });
    EXPECT_EQ(ran.load(), 4) << c.name;
  }
}

TEST(Budget, GenerousDeadlineDoesNotPerturbResults) {
  const EdgeList g = random_graph(3000, 12000, 17);
  ExecutionBudget budget;
  budget.set_deadline_after(3600.0);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorFAL;
  opts.threads = 4;
  opts.budget = &budget;
  const auto r = core::minimum_spanning_forest(g, opts);
  EXPECT_FALSE(r.degraded_to_sequential);
  EXPECT_EQ(test::sorted_ids(r), test::sorted_ids(seq::kruskal_msf(g)));
}

TEST(Budget, CancelMidBoruvkaReturnsCancelledWithTeamJoined) {
  // A watcher thread cancels shortly after the solve starts; the request
  // must come back as kCancelled at the next iteration checkpoint.  The
  // dispatcher-owned ThreadTeam is destroyed (joined) before the error
  // escapes minimum_spanning_forest — a hung worker would hang this test.
  const EdgeList g = random_graph(300000, 900000, 18);
  ExecutionBudget budget;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorEL;
  opts.threads = 4;
  opts.budget = &budget;
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    budget.request_cancel();
  });
  try {
    (void)core::minimum_spanning_forest(g, opts);
    FAIL() << "expected cancellation";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kCancelled);
  }
  canceller.join();
}

// ---------------------------------------------------------------------------
// Memory cap: arena ledger and graceful degradation

TEST(ArenaCap, SharedLedgerThrowsBadAllocAtCap) {
  ThreadArenas arenas(2, /*chunk_bytes=*/1 << 12, /*cap_bytes=*/1 << 13);
  // One 4 KiB chunk per thread fills the 8 KiB cap; the next chunk trips.
  (void)arenas.local(0).alloc_array<std::byte>(1 << 10);
  (void)arenas.local(1).alloc_array<std::byte>(1 << 10);
  EXPECT_EQ(arenas.total_reserved(), std::size_t{1} << 13);
  // Doesn't fit the 3 KiB left in thread 0's chunk -> needs a fresh chunk.
  EXPECT_THROW((void)arenas.local(0).alloc_array<std::byte>(1 << 12),
               std::bad_alloc);
  // The failed reservation rolled its bytes back off the ledger.
  EXPECT_EQ(arenas.total_reserved(), std::size_t{1} << 13);
  // reset() recycles chunks without new reservations, so steady-state reuse
  // stays under the cap.
  arenas.reset_all();
  EXPECT_NO_THROW((void)arenas.local(0).alloc_array<std::byte>(1 << 10));
}

TEST(Fallback, MemoryCapDegradesToValidatedKruskalForest) {
  const EdgeList g = random_graph(3000, 12000, 19);
  ExecutionBudget budget;
  budget.set_memory_cap(std::size_t{8} << 10);  // far below Bor-ALM's needs
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorALM;
  opts.threads = 4;
  opts.budget = &budget;
  // Force an early full rebuild so the deferred path draws on the (capped)
  // arenas; deferral alone would never allocate from them on this graph.
  opts.compact_live_threshold = 0.99;
  const auto r = core::minimum_spanning_forest(g, opts);
  EXPECT_TRUE(r.degraded_to_sequential);
  EXPECT_EQ(test::sorted_ids(r), test::sorted_ids(seq::kruskal_msf(g)));
  const auto check = validate_spanning_forest(g, r.edges);
  EXPECT_TRUE(check.ok) << check.error;
  EXPECT_EQ(check.num_trees, r.num_trees);
}

TEST(Fallback, DisabledFallbackSurfacesOutOfMemory) {
  const EdgeList g = random_graph(3000, 12000, 19);
  ExecutionBudget budget;
  budget.set_memory_cap(std::size_t{8} << 10);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorALM;
  opts.threads = 4;
  opts.budget = &budget;
  opts.compact_live_threshold = 0.99;  // see MemoryCapDegrades above
  opts.allow_sequential_fallback = false;
  try {
    (void)core::minimum_spanning_forest(g, opts);
    FAIL() << "expected kOutOfMemory";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kOutOfMemory);
  }
}

TEST(Fallback, UncappedBorAlmIsUnaffected) {
  const EdgeList g = random_graph(3000, 12000, 20);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorALM;
  opts.threads = 4;
  const auto r = core::minimum_spanning_forest(g, opts);
  EXPECT_FALSE(r.degraded_to_sequential);
  EXPECT_EQ(test::sorted_ids(r), test::sorted_ids(seq::kruskal_msf(g)));
}

// ---------------------------------------------------------------------------
// Up-front request validation

TEST(InvalidOptions, ZeroThreadsRejected) {
  const EdgeList g = random_graph(100, 300, 1);
  core::MsfOptions opts;
  opts.threads = 0;
  try {
    (void)core::minimum_spanning_forest(g, opts);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
  opts.threads = -3;
  EXPECT_THROW((void)core::minimum_spanning_forest(g, opts), Error);
}

TEST(InvalidOptions, ZeroBcBaseSizeRejected) {
  const EdgeList g = random_graph(100, 300, 1);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kMstBC;
  opts.bc_base_size = 0;
  try {
    (void)core::minimum_spanning_forest(g, opts);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
}

TEST(InvalidOptions, OutOfRangeAlgorithmRejected) {
  const EdgeList g = random_graph(100, 300, 1);
  core::MsfOptions opts;
  opts.algorithm = static_cast<core::Algorithm>(999);
  try {
    (void)core::minimum_spanning_forest(g, opts);
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
}

TEST(InvalidOptions, MalformedGraphRejectedWithCode) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.edges.push_back(WEdge{2, 2, 1.0});  // self-loop, bypassing add_edge
  try {
    (void)core::minimum_spanning_forest(g, core::MsfOptions{});
    FAIL();
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
}

// ---------------------------------------------------------------------------
// Non-finite weights at the I/O boundary

TEST(IoGuards, DimacsRejectsNonFiniteWeights) {
  for (const char* bad : {"nan", "inf", "-inf", "NaN", "Infinity"}) {
    std::istringstream is(std::string("p edge 2 1\ne 1 2 ") + bad + "\n");
    EXPECT_THROW((void)read_dimacs(is), std::runtime_error) << bad;
  }
  // Finite weights still parse.
  std::istringstream ok("p edge 2 1\ne 1 2 0.5\n");
  const EdgeList g = read_dimacs(ok);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(IoGuards, BinaryRejectsNonFiniteWeights) {
  for (const Weight bad : {std::numeric_limits<Weight>::quiet_NaN(),
                           std::numeric_limits<Weight>::infinity(),
                           -std::numeric_limits<Weight>::infinity()}) {
    EdgeList g(2);
    g.edges.push_back(WEdge{0, 1, bad});  // add_edge has no weight check
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_binary(ss, g);
    EXPECT_THROW((void)read_binary(ss), std::runtime_error) << bad;
  }
}

}  // namespace
