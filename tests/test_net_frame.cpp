// Binary frame codec: round-trips, CRC rejection, truncation handling,
// batch framing, and a decode fuzz pass — malformed bytes must come back as
// protocol errors, never UB or a crash.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/frame.hpp"
#include "pprim/rng.hpp"
#include "serve/request.hpp"

namespace {

using namespace smp;
using namespace smp::net;

/// Frames one encoded request message and decodes it back.
std::vector<BinRequest> frame_roundtrip_request(const BinRequest& in) {
  std::string msg;
  encode_request(msg, in);
  std::string wire;
  frame_message(wire, msg);

  std::size_t off = 0;
  std::string_view payload;
  std::string error;
  EXPECT_EQ(try_read_frame(wire, off, payload, error), DecodeStatus::kOk)
      << error;
  EXPECT_EQ(off, wire.size());
  std::vector<BinRequest> out;
  EXPECT_TRUE(decode_request_payload(payload, out, error)) << error;
  return out;
}

TEST(NetFrame, RequestRoundTripPreservesEveryField) {
  BinRequest in;
  in.id = 0xdeadbeefcafe0001ull;
  in.req.op = serve::Op::kInsert;
  in.req.session = "a-session";
  in.req.num_vertices = 77;
  in.req.path = "/tmp/some.graph";
  in.req.u = 3;
  in.req.v = 9;
  in.req.insertions = {{0, 1, 1.5}, {2, 3, -0.25}, {4, 5, 1e300}};
  in.req.deletions = {{7, 8}, {1, 2}};
  in.req.limit = 12345678901234ull;
  in.req.lambda = 0.625;
  in.req.has_lambda = true;
  in.req.deadline_s = 0.125;
  in.req.idem_id = "write-42";
  in.req.pin_epoch = 17;

  const std::vector<BinRequest> out = frame_roundtrip_request(in);
  ASSERT_EQ(out.size(), 1u);
  const BinRequest& r = out[0];
  EXPECT_EQ(r.id, in.id);
  EXPECT_FALSE(r.quit);
  EXPECT_FALSE(r.shutdown);
  EXPECT_EQ(r.req.op, in.req.op);
  EXPECT_EQ(r.req.session, in.req.session);
  EXPECT_EQ(r.req.num_vertices, in.req.num_vertices);
  EXPECT_EQ(r.req.path, in.req.path);
  EXPECT_EQ(r.req.u, in.req.u);
  EXPECT_EQ(r.req.v, in.req.v);
  ASSERT_EQ(r.req.insertions.size(), in.req.insertions.size());
  for (std::size_t i = 0; i < in.req.insertions.size(); ++i) {
    EXPECT_EQ(r.req.insertions[i].u, in.req.insertions[i].u);
    EXPECT_EQ(r.req.insertions[i].v, in.req.insertions[i].v);
    EXPECT_EQ(r.req.insertions[i].w, in.req.insertions[i].w);
  }
  EXPECT_EQ(r.req.deletions, in.req.deletions);
  EXPECT_EQ(r.req.limit, in.req.limit);
  EXPECT_EQ(r.req.lambda, in.req.lambda);
  EXPECT_EQ(r.req.has_lambda, in.req.has_lambda);
  EXPECT_EQ(r.req.deadline_s, in.req.deadline_s);
  EXPECT_EQ(r.req.idem_id, in.req.idem_id);
  EXPECT_EQ(r.req.pin_epoch, in.req.pin_epoch);
}

TEST(NetFrame, ControlMessagesRoundTrip) {
  BinRequest quit;
  quit.id = 5;
  quit.quit = true;
  const std::vector<BinRequest> q = frame_roundtrip_request(quit);
  ASSERT_EQ(q.size(), 1u);
  EXPECT_TRUE(q[0].quit);
  EXPECT_FALSE(q[0].shutdown);

  BinRequest down;
  down.id = 6;
  down.shutdown = true;
  const std::vector<BinRequest> s = frame_roundtrip_request(down);
  ASSERT_EQ(s.size(), 1u);
  EXPECT_TRUE(s[0].shutdown);
}

TEST(NetFrame, ResponseRoundTripPreservesEveryField) {
  BinResponse in;
  in.id = 99;
  in.op = serve::Op::kHealth;
  in.resp.status = serve::Status::kOk;
  in.resp.detail = "all good";
  in.resp.weight = 12.5;
  in.resp.trees = 3;
  in.resp.forest_edges = 8;
  in.resp.live_edges = 20;
  in.resp.connected = true;
  in.resp.applied = true;
  in.resp.dedup = true;
  in.resp.pathmax_found = true;
  in.resp.coalesced = 4;
  in.resp.remapped = 2;
  in.resp.edges_total = 8;
  in.resp.edges = {{1, 2, 0.5}};
  in.resp.edge_ids = {42, 43};
  in.resp.sessions = {"a", "b"};
  in.resp.stats_json = "{\"x\": 1}";
  in.resp.lsn = 777;
  in.resp.idem_id = "w-1";
  in.resp.health_queue_depth = 5;
  in.resp.health_sessions = 2;
  in.resp.uptime_s = 1.5;
  in.resp.shard_depths = {3, 2, 0};
  in.resp.reclaimed_epochs = 11;
  in.resp.listeners = {"uds:/tmp/x.sock", "tcp:4321"};
  in.resp.epoch = 29;
  in.resp.index_version = 29;
  in.resp.pathmax_id = 42;
  in.resp.pathmax_u = 1;
  in.resp.pathmax_v = 2;
  in.resp.pathmax_w = 0.5;
  in.resp.clusters = 6;
  in.resp.cut_digest = 0x1234abcdu;
  in.resp.index_status = true;
  in.resp.index_present = true;
  in.resp.index_fresh = true;
  in.resp.index_vertices = 100;
  in.resp.index_edges = 99;
  in.resp.index_age_s = 0.25;
  in.resp.index_build_s = 0.0001;
  in.resp.index_rebuilds = 7;

  std::string wire;
  encode_response_frame(wire, in);
  std::size_t off = 0;
  std::string_view payload;
  std::string error;
  ASSERT_EQ(try_read_frame(wire, off, payload, error), DecodeStatus::kOk);
  std::vector<BinResponse> out;
  ASSERT_TRUE(decode_response_payload(payload, out, error)) << error;
  ASSERT_EQ(out.size(), 1u);
  const BinResponse& r = out[0];
  EXPECT_EQ(r.id, in.id);
  EXPECT_EQ(r.op, in.op);
  EXPECT_EQ(r.resp.status, in.resp.status);
  EXPECT_EQ(r.resp.detail, in.resp.detail);
  EXPECT_EQ(r.resp.weight, in.resp.weight);
  EXPECT_EQ(r.resp.trees, in.resp.trees);
  EXPECT_EQ(r.resp.forest_edges, in.resp.forest_edges);
  EXPECT_EQ(r.resp.live_edges, in.resp.live_edges);
  EXPECT_EQ(r.resp.connected, in.resp.connected);
  EXPECT_EQ(r.resp.applied, in.resp.applied);
  EXPECT_EQ(r.resp.dedup, in.resp.dedup);
  EXPECT_EQ(r.resp.coalesced, in.resp.coalesced);
  EXPECT_EQ(r.resp.remapped, in.resp.remapped);
  EXPECT_EQ(r.resp.edges_total, in.resp.edges_total);
  ASSERT_EQ(r.resp.edges.size(), 1u);
  EXPECT_EQ(r.resp.edges[0].w, 0.5);
  EXPECT_EQ(r.resp.edge_ids, in.resp.edge_ids);
  EXPECT_EQ(r.resp.sessions, in.resp.sessions);
  EXPECT_EQ(r.resp.stats_json, in.resp.stats_json);
  EXPECT_EQ(r.resp.lsn, in.resp.lsn);
  EXPECT_EQ(r.resp.idem_id, in.resp.idem_id);
  EXPECT_EQ(r.resp.health_queue_depth, in.resp.health_queue_depth);
  EXPECT_EQ(r.resp.health_sessions, in.resp.health_sessions);
  EXPECT_EQ(r.resp.uptime_s, in.resp.uptime_s);
  EXPECT_EQ(r.resp.shard_depths, in.resp.shard_depths);
  EXPECT_EQ(r.resp.reclaimed_epochs, in.resp.reclaimed_epochs);
  EXPECT_EQ(r.resp.listeners, in.resp.listeners);
  EXPECT_EQ(r.resp.epoch, in.resp.epoch);
  EXPECT_EQ(r.resp.index_version, in.resp.index_version);
  EXPECT_EQ(r.resp.pathmax_found, in.resp.pathmax_found);
  EXPECT_EQ(r.resp.pathmax_id, in.resp.pathmax_id);
  EXPECT_EQ(r.resp.pathmax_w, in.resp.pathmax_w);
  EXPECT_EQ(r.resp.clusters, in.resp.clusters);
  EXPECT_EQ(r.resp.cut_digest, in.resp.cut_digest);
  EXPECT_EQ(r.resp.index_status, in.resp.index_status);
  EXPECT_EQ(r.resp.index_fresh, in.resp.index_fresh);
  EXPECT_EQ(r.resp.index_rebuilds, in.resp.index_rebuilds);
}

TEST(NetFrame, BatchFrameCarriesManyMessagesInOrder) {
  std::vector<std::string> msgs;
  for (int i = 0; i < 5; ++i) {
    BinRequest r;
    r.id = static_cast<std::uint64_t>(100 + i);
    r.req.op = serve::Op::kWeight;
    r.req.session = "s" + std::to_string(i);
    std::string m;
    encode_request(m, r);
    msgs.push_back(std::move(m));
  }
  std::string wire;
  frame_batch(wire, msgs);

  std::size_t off = 0;
  std::string_view payload;
  std::string error;
  ASSERT_EQ(try_read_frame(wire, off, payload, error), DecodeStatus::kOk);
  std::vector<BinRequest> out;
  ASSERT_TRUE(decode_request_payload(payload, out, error)) << error;
  ASSERT_EQ(out.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[static_cast<std::size_t>(i)].id,
              static_cast<std::uint64_t>(100 + i));
    EXPECT_EQ(out[static_cast<std::size_t>(i)].req.session,
              "s" + std::to_string(i));
  }
}

TEST(NetFrame, TruncatedFrameAsksForMoreBytes) {
  BinRequest r;
  r.id = 1;
  r.req.op = serve::Op::kPing;
  std::string msg;
  encode_request(msg, r);
  std::string wire;
  frame_message(wire, msg);

  // Every proper prefix is kNeedMore and must not consume anything.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    std::size_t off = 0;
    std::string_view payload;
    std::string error;
    EXPECT_EQ(try_read_frame(std::string_view(wire).substr(0, cut), off,
                             payload, error),
              DecodeStatus::kNeedMore)
        << "prefix length " << cut;
    EXPECT_EQ(off, 0u);
  }
}

TEST(NetFrame, EveryPayloadBitFlipIsCaughtByCrc) {
  BinRequest r;
  r.id = 7;
  r.req.op = serve::Op::kConnected;
  r.req.session = "g";
  r.req.u = 1;
  r.req.v = 2;
  std::string msg;
  encode_request(msg, r);
  std::string wire;
  frame_message(wire, msg);

  // Flip one bit of each payload byte in turn: the frame stays delimited
  // (kBadFrame, consumed — recoverable), never decodes as valid.
  for (std::size_t byte = 8; byte < wire.size(); ++byte) {
    std::string corrupt = wire;
    corrupt[byte] = static_cast<char>(corrupt[byte] ^ 0x40);
    std::size_t off = 0;
    std::string_view payload;
    std::string error;
    EXPECT_EQ(try_read_frame(corrupt, off, payload, error),
              DecodeStatus::kBadFrame)
        << "payload byte " << byte;
    EXPECT_EQ(off, corrupt.size());  // consumed: the stream can resync
    EXPECT_FALSE(error.empty());
  }
}

TEST(NetFrame, OversizedLengthPrefixIsFatal) {
  std::string wire;
  const std::uint32_t bad_len = kMaxFrame + 1;
  for (int i = 0; i < 4; ++i) {
    wire.push_back(static_cast<char>((bad_len >> (8 * i)) & 0xff));
  }
  wire.append(4, '\0');  // crc
  std::size_t off = 0;
  std::string_view payload;
  std::string error;
  EXPECT_EQ(try_read_frame(wire, off, payload, error), DecodeStatus::kFatal);
  EXPECT_FALSE(error.empty());
}

TEST(NetFrame, MalformedPayloadsAreErrorsNotCrashes) {
  std::string error;
  std::vector<BinRequest> out;

  // Empty payload.
  EXPECT_FALSE(decode_request_payload("", out, error));
  // Unknown kind byte.
  EXPECT_FALSE(decode_request_payload(std::string(1, '\x7f'), out, error));
  // kMessage with a truncated header.
  EXPECT_FALSE(decode_request_payload(std::string("\x01\x01\x02", 3), out,
                                      error));
  // kBatch whose count promises more than the bytes can hold.
  std::string batch(1, '\x02');
  batch += std::string("\xff\xff\xff\x7f", 4);
  EXPECT_FALSE(decode_request_payload(batch, out, error));

  // Truncate a valid message at every byte: each cut is an error, not UB.
  BinRequest r;
  r.id = 3;
  r.req.op = serve::Op::kInsert;
  r.req.session = "sess";
  r.req.insertions = {{0, 1, 2.0}};
  r.req.idem_id = "id-1";
  std::string msg;
  encode_request(msg, r);
  std::string payload(1, static_cast<char>(kKindMessage));
  payload += msg;
  for (std::size_t cut = 1; cut < payload.size(); ++cut) {
    std::vector<BinRequest> partial;
    std::string err;
    EXPECT_FALSE(decode_request_payload(
        std::string_view(payload).substr(0, cut), partial, err))
        << "cut " << cut;
  }
}

TEST(NetFrame, DecoderSurvivesRandomBytes) {
  // Deterministic fuzz: random garbage through the full frame + payload
  // pipeline.  Nothing here asserts specific outcomes — the test is that
  // every path returns (ASan/UBSan/TSan builds make this meaningful).
  Rng rng(0xF00D);
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t len = rng.next_below(64);
    std::string buf;
    buf.reserve(len + 8);
    for (std::size_t i = 0; i < len + 8; ++i) {
      buf.push_back(static_cast<char>(rng.next_below(256)));
    }
    std::size_t off = 0;
    std::string_view payload;
    std::string error;
    const DecodeStatus st = try_read_frame(buf, off, payload, error);
    if (st == DecodeStatus::kOk) {
      std::vector<BinRequest> reqs;
      std::vector<BinResponse> resps;
      decode_request_payload(payload, reqs, error);
      decode_response_payload(payload, resps, error);
    }
  }
  // Mutated-valid fuzz: take a real frame and splice random bytes into it.
  BinRequest r;
  r.id = 9;
  r.req.op = serve::Op::kTopK;
  r.req.session = "fuzz";
  r.req.limit = 10;
  std::string msg;
  encode_request(msg, r);
  std::string wire;
  frame_message(wire, msg);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string mutated = wire;
    const std::size_t hits = 1 + rng.next_below(4);
    for (std::size_t h = 0; h < hits; ++h) {
      mutated[rng.next_below(mutated.size())] =
          static_cast<char>(rng.next_below(256));
    }
    std::size_t off = 0;
    std::string_view payload;
    std::string error;
    const DecodeStatus st = try_read_frame(mutated, off, payload, error);
    if (st == DecodeStatus::kOk) {
      std::vector<BinRequest> reqs;
      decode_request_payload(payload, reqs, error);
    }
  }
}

}  // namespace
