// Max-flow substrate: Dinic and push-relabel against hand-checked instances,
// each other, and max-flow = min-cut on random networks.
#include <gtest/gtest.h>

#include <vector>

#include "flow/flow_network.hpp"
#include "pprim/rng.hpp"

namespace {

using namespace smp;
using namespace smp::flow;
using graph::VertexId;

using Solver = Cap (*)(FlowNetwork&, VertexId, VertexId);
const Solver kSolvers[] = {max_flow_dinic, max_flow_push_relabel};
const char* kNames[] = {"dinic", "push-relabel"};

TEST(Flow, HandComputedDiamond) {
  // s=0 → {1,2} → t=3.  Classic: value 19 + 4 = min(10+10, ...) = 19?
  // Compute precisely: s→1 cap 10, s→2 cap 10, 1→t cap 8, 2→t cap 9,
  // 1→2 cap 5.  Max flow = 8 + 9 = 17 (1→2 lets 1 route 2 spare units,
  // but 2→t is capped at 9, already fed by s→2's 9).
  for (int si = 0; si < 2; ++si) {
    FlowNetwork net(4);
    net.add_edge(0, 1, 10);
    net.add_edge(0, 2, 10);
    net.add_edge(1, 3, 8);
    net.add_edge(2, 3, 9);
    net.add_edge(1, 2, 5);
    EXPECT_EQ(kSolvers[si](net, 0, 3), 17) << kNames[si];
  }
}

TEST(Flow, ClassicCLRSInstance) {
  // CLRS figure 26.1: max flow value 23.
  for (int si = 0; si < 2; ++si) {
    FlowNetwork net(6);
    net.add_edge(0, 1, 16);
    net.add_edge(0, 2, 13);
    net.add_edge(1, 2, 10);
    net.add_edge(2, 1, 4);
    net.add_edge(1, 3, 12);
    net.add_edge(3, 2, 9);
    net.add_edge(2, 4, 14);
    net.add_edge(4, 3, 7);
    net.add_edge(3, 5, 20);
    net.add_edge(4, 5, 4);
    EXPECT_EQ(kSolvers[si](net, 0, 5), 23) << kNames[si];
  }
}

TEST(Flow, DisconnectedAndDegenerate) {
  for (int si = 0; si < 2; ++si) {
    FlowNetwork net(4);
    net.add_edge(0, 1, 5);
    // t = 3 unreachable.
    EXPECT_EQ(kSolvers[si](net, 0, 3), 0) << kNames[si];
    FlowNetwork net2(2);
    EXPECT_EQ(kSolvers[si](net2, 0, 1), 0) << kNames[si];
    FlowNetwork net3(1);
    EXPECT_EQ(kSolvers[si](net3, 0, 0), 0) << "s == t";
  }
}

TEST(Flow, AntiparallelAndParallelEdges) {
  for (int si = 0; si < 2; ++si) {
    FlowNetwork net(3);
    net.add_edge(0, 1, 3);
    net.add_edge(0, 1, 4);   // parallel
    net.add_edge(1, 0, 100); // antiparallel, irrelevant
    net.add_edge(1, 2, 5);
    EXPECT_EQ(kSolvers[si](net, 0, 2), 5) << kNames[si];
  }
}

FlowNetwork random_network(VertexId n, std::size_t m, std::uint64_t seed) {
  Rng rng(seed);
  FlowNetwork net(n);
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    auto v = static_cast<VertexId>(rng.next_below(n - 1));
    if (v >= u) ++v;
    net.add_edge(u, v, static_cast<Cap>(1 + rng.next_below(100)));
  }
  net.freeze();
  return net;
}

TEST(Flow, SolversAgreeOnRandomNetworks) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    FlowNetwork net = random_network(60, 400, seed);
    const Cap d = max_flow_dinic(net, 0, 59);
    net.reset();
    const Cap pr = max_flow_push_relabel(net, 0, 59);
    EXPECT_EQ(d, pr) << "seed " << seed;
  }
}

TEST(Flow, MaxFlowEqualsMinCutCapacity) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const VertexId n = 40;
    Rng rng(seed * 101);
    // Build and remember the edges so the cut capacity can be re-read.
    struct E {
      VertexId u, v;
      Cap c;
    };
    std::vector<E> edges;
    FlowNetwork net(n);
    for (int i = 0; i < 300; ++i) {
      const auto u = static_cast<VertexId>(rng.next_below(n));
      auto v = static_cast<VertexId>(rng.next_below(n - 1));
      if (v >= u) ++v;
      const Cap c = static_cast<Cap>(1 + rng.next_below(50));
      edges.push_back({u, v, c});
      net.add_edge(u, v, c);
    }
    const Cap flow = max_flow_dinic(net, 0, n - 1);
    const auto side = min_cut_side(net, 0);
    ASSERT_TRUE(side[0]);
    ASSERT_FALSE(side[n - 1]) << "t reachable after max flow";
    Cap cut = 0;
    for (const auto& e : edges) {
      if (side[e.u] && !side[e.v]) cut += e.c;
    }
    EXPECT_EQ(cut, flow) << "max-flow = min-cut, seed " << seed;
  }
}

TEST(Flow, MinCutAlsoValidAfterPushRelabel) {
  FlowNetwork net = random_network(50, 350, 77);
  const Cap flow = max_flow_push_relabel(net, 0, 49);
  const auto side = min_cut_side(net, 0);
  EXPECT_TRUE(side[0]);
  EXPECT_FALSE(side[49]);
  (void)flow;
}

TEST(Flow, FlowOnReportsPerEdgeFlowAndConservation) {
  FlowNetwork net(4);
  const auto a01 = net.add_edge(0, 1, 10);
  const auto a02 = net.add_edge(0, 2, 10);
  const auto a13 = net.add_edge(1, 3, 8);
  const auto a23 = net.add_edge(2, 3, 9);
  const auto a12 = net.add_edge(1, 2, 5);
  const Cap f = max_flow_dinic(net, 0, 3);
  EXPECT_EQ(f, 17);
  // Out of s == into t == f.
  EXPECT_EQ(net.flow_on(a01) + net.flow_on(a02), f);
  EXPECT_EQ(net.flow_on(a13) + net.flow_on(a23), f);
  // Conservation at 1 and 2.
  EXPECT_EQ(net.flow_on(a01), net.flow_on(a13) + net.flow_on(a12));
  EXPECT_EQ(net.flow_on(a02) + net.flow_on(a12), net.flow_on(a23));
}

TEST(Flow, ResetRestoresCapacities) {
  FlowNetwork net = random_network(30, 150, 5);
  const Cap first = max_flow_dinic(net, 0, 29);
  net.reset();
  const Cap second = max_flow_dinic(net, 0, 29);
  EXPECT_EQ(first, second);
}

TEST(Flow, UnitCapacityBipartiteMatching) {
  // 2k left vertices, 2k right; left i connects to right i and (i+1) mod k.
  // Perfect matching exists → max flow = k.
  const VertexId k = 50;
  FlowNetwork net(2 * k + 2);
  const VertexId s = 2 * k, t = 2 * k + 1;
  for (VertexId i = 0; i < k; ++i) {
    net.add_edge(s, i, 1);
    net.add_edge(k + i, t, 1);
    net.add_edge(i, k + i, 1);
    net.add_edge(i, k + (i + 1) % k, 1);
  }
  EXPECT_EQ(max_flow_dinic(net, s, t), k);
}

TEST(Flow, LongSerialChain) {
  const VertexId n = 10000;
  FlowNetwork net(n);
  for (VertexId v = 1; v < n; ++v) net.add_edge(v - 1, v, 7);
  for (int si = 0; si < 2; ++si) {
    FlowNetwork copy(n);
    for (VertexId v = 1; v < n; ++v) copy.add_edge(v - 1, v, 7);
    EXPECT_EQ(kSolvers[si](copy, 0, n - 1), 7) << kNames[si];
  }
}

}  // namespace
