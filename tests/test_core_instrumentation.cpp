// StepTimes and IterationStat instrumentation of the Borůvka variants —
// the hooks behind Table 1 and Fig. 2.
#include <gtest/gtest.h>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(IterationStats, VerticesAtLeastHalvePerIteration) {
  // Halving needs a connected input (finished components stop shrinking),
  // so use a mesh rather than a random graph with possible isolated
  // vertices.
  const EdgeList g = mesh2d(64, 64, 3);
  for (const auto alg :
       {core::Algorithm::kBorEL, core::Algorithm::kBorAL, core::Algorithm::kBorFAL}) {
    std::vector<core::IterationStat> stats;
    core::MsfOptions opts;
    opts.algorithm = alg;
    opts.threads = 2;
    opts.iteration_stats = &stats;
    (void)core::minimum_spanning_forest(g, opts);
    ASSERT_FALSE(stats.empty()) << core::to_string(alg);
    EXPECT_EQ(stats[0].vertices, 4096u);
    for (std::size_t i = 1; i < stats.size(); ++i) {
      EXPECT_LE(stats[i].vertices, stats[i - 1].vertices / 2)
          << core::to_string(alg) << " iteration " << i;
    }
    // log2(4096) halvings, plus Bor-FAL's final no-progress probe iteration.
    EXPECT_LE(stats.size(), 13u) << core::to_string(alg);
  }
}

TEST(IterationStats, EdgeListShrinksForELGrowsNeverForFAL) {
  const EdgeList g = random_graph(3000, 12000, 4);
  std::vector<core::IterationStat> el_stats, fal_stats;
  {
    core::MsfOptions opts;
    opts.algorithm = core::Algorithm::kBorEL;
    opts.iteration_stats = &el_stats;
    (void)core::minimum_spanning_forest(g, opts);
  }
  {
    core::MsfOptions opts;
    opts.algorithm = core::Algorithm::kBorFAL;
    opts.iteration_stats = &fal_stats;
    (void)core::minimum_spanning_forest(g, opts);
  }
  ASSERT_GE(el_stats.size(), 2u);
  EXPECT_EQ(el_stats[0].directed_edges, 2 * g.num_edges());
  for (std::size_t i = 1; i < el_stats.size(); ++i) {
    EXPECT_LT(el_stats[i].directed_edges, el_stats[i - 1].directed_edges)
        << "Bor-EL compacts edges every iteration";
  }
  for (const auto& s : fal_stats) {
    EXPECT_EQ(s.directed_edges, 2 * g.num_edges())
        << "Bor-FAL never removes edges";
  }
}

TEST(IterationStats, Str0HalvesExactly) {
  // str0 is engineered so Borůvka's vertex count halves exactly (§5.1).
  const EdgeList g = structured_graph(0, 1024, 5);
  std::vector<core::IterationStat> stats;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorAL;
  opts.iteration_stats = &stats;
  (void)core::minimum_spanning_forest(g, opts);
  ASSERT_EQ(stats.size(), 10u) << "log2(1024) iterations";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].vertices, 1024u >> i) << "iteration " << i;
  }
}

TEST(StepTimes, AllVariantsPopulate) {
  const EdgeList g = random_graph(3000, 9000, 6);
  for (const auto alg : core::kParallelAlgorithms) {
    core::StepTimes st;
    core::MsfOptions opts;
    opts.algorithm = alg;
    opts.threads = 2;
    opts.bc_base_size = 64;
    opts.step_times = &st;
    (void)core::minimum_spanning_forest(g, opts);
    EXPECT_GT(st.total(), 0.0) << core::to_string(alg);
  }
}

TEST(StepTimes, AccumulateAcrossRuns) {
  const EdgeList g = random_graph(1000, 3000, 7);
  core::StepTimes st;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorEL;
  opts.step_times = &st;
  (void)core::minimum_spanning_forest(g, opts);
  const double after_one = st.total();
  (void)core::minimum_spanning_forest(g, opts);
  EXPECT_GT(st.total(), after_one) << "step_times accumulates (+=)";
}

TEST(AlgorithmNames, AllDistinct) {
  EXPECT_EQ(core::to_string(core::Algorithm::kBorEL), "Bor-EL");
  EXPECT_EQ(core::to_string(core::Algorithm::kBorAL), "Bor-AL");
  EXPECT_EQ(core::to_string(core::Algorithm::kBorALM), "Bor-ALM");
  EXPECT_EQ(core::to_string(core::Algorithm::kBorFAL), "Bor-FAL");
  EXPECT_EQ(core::to_string(core::Algorithm::kMstBC), "MST-BC");
  EXPECT_EQ(core::to_string(core::Algorithm::kSeqPrim), "Prim");
  EXPECT_EQ(core::to_string(core::Algorithm::kSeqKruskal), "Kruskal");
  EXPECT_EQ(core::to_string(core::Algorithm::kSeqBoruvka), "Boruvka");
}

TEST(Dispatcher, RoutesSequentialAlgorithms) {
  const EdgeList g = random_graph(300, 900, 8);
  const auto ref = test::sorted_ids(core::minimum_spanning_forest(
      g, {.algorithm = core::Algorithm::kSeqKruskal}));
  for (const auto alg :
       {core::Algorithm::kSeqPrim, core::Algorithm::kSeqBoruvka}) {
    core::MsfOptions opts;
    opts.algorithm = alg;
    EXPECT_EQ(test::sorted_ids(core::minimum_spanning_forest(g, opts)), ref);
  }
}

}  // namespace
