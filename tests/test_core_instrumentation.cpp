// StepTimes and IterationStat instrumentation of the Borůvka variants —
// the hooks behind Table 1 and Fig. 2.
#include <gtest/gtest.h>

#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "pprim/tuning.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(IterationStats, VerticesAtLeastHalvePerIteration) {
  // Halving needs a connected input (finished components stop shrinking),
  // so use a mesh rather than a random graph with possible isolated
  // vertices.
  const EdgeList g = mesh2d(64, 64, 3);
  for (const auto alg :
       {core::Algorithm::kBorEL, core::Algorithm::kBorAL, core::Algorithm::kBorFAL}) {
    std::vector<core::IterationStat> stats;
    core::MsfOptions opts;
    opts.algorithm = alg;
    opts.threads = 2;
    opts.iteration_stats = &stats;
    (void)core::minimum_spanning_forest(g, opts);
    ASSERT_FALSE(stats.empty()) << core::to_string(alg);
    EXPECT_EQ(stats[0].vertices, 4096u);
    for (std::size_t i = 1; i < stats.size(); ++i) {
      EXPECT_LE(stats[i].vertices, stats[i - 1].vertices / 2)
          << core::to_string(alg) << " iteration " << i;
    }
    // log2(4096) halvings, plus Bor-FAL's final no-progress probe iteration.
    EXPECT_LE(stats.size(), 13u) << core::to_string(alg);
  }
}

TEST(IterationStats, EdgeListShrinksForELGrowsNeverForFAL) {
  const EdgeList g = random_graph(3000, 12000, 4);
  std::vector<core::IterationStat> el_stats, el_defer_stats, fal_stats,
      fal_scan_stats;
  {
    // Eager compact-graph: the historical Bor-EL loop, opted out of deferral.
    core::MsfOptions opts;
    opts.algorithm = core::Algorithm::kBorEL;
    opts.deferred_compact = core::DeferredCompactMode::kOff;
    opts.iteration_stats = &el_stats;
    (void)core::minimum_spanning_forest(g, opts);
  }
  {
    core::MsfOptions opts;
    opts.algorithm = core::Algorithm::kBorEL;
    opts.iteration_stats = &el_defer_stats;
    (void)core::minimum_spanning_forest(g, opts);
  }
  {
    core::MsfOptions opts;
    opts.algorithm = core::Algorithm::kBorFAL;
    opts.iteration_stats = &fal_stats;
    (void)core::minimum_spanning_forest(g, opts);
  }
  {
    core::MsfOptions opts;
    opts.algorithm = core::Algorithm::kBorFAL;
    opts.find_min = core::FindMinMode::kScan;
    opts.iteration_stats = &fal_scan_stats;
    (void)core::minimum_spanning_forest(g, opts);
  }
  ASSERT_GE(el_stats.size(), 2u);
  EXPECT_EQ(el_stats[0].directed_edges, 2 * g.num_edges());
  for (std::size_t i = 1; i < el_stats.size(); ++i) {
    EXPECT_LT(el_stats[i].directed_edges, el_stats[i - 1].directed_edges)
        << "eager Bor-EL compacts edges every iteration";
    EXPECT_EQ(el_stats[i].strategy, core::CompactStrategy::kEager);
  }
  // Deferred Bor-EL (the packed-path default) reports the live-arc working
  // set: it starts at 2m, never grows, and may stay flat across deferred
  // iterations instead of shrinking every time.
  ASSERT_GE(el_defer_stats.size(), 2u);
  EXPECT_EQ(el_defer_stats[0].directed_edges, 2 * g.num_edges());
  for (std::size_t i = 1; i < el_defer_stats.size(); ++i) {
    EXPECT_LE(el_defer_stats[i].directed_edges,
              el_defer_stats[i - 1].directed_edges)
        << "deferred live-arc working set is monotone non-increasing";
    EXPECT_LE(el_defer_stats[i].live_fraction, 1.0);
    EXPECT_GE(el_defer_stats[i].live_fraction, 0.0);
  }
  // Bor-FAL never physically removes edges; the default packed-key path
  // reports its live-arc working set, which starts at 2m and only shrinks.
  ASSERT_GE(fal_stats.size(), 2u);
  EXPECT_EQ(fal_stats[0].directed_edges, 2 * g.num_edges());
  for (std::size_t i = 1; i < fal_stats.size(); ++i) {
    EXPECT_LE(fal_stats[i].directed_edges, fal_stats[i - 1].directed_edges)
        << "live-arc working set is monotone non-increasing";
  }
  // The seed scan kernel keeps the paper's semantics: always all 2m.
  for (const auto& s : fal_scan_stats) {
    EXPECT_EQ(s.directed_edges, 2 * g.num_edges())
        << "Bor-FAL (scan mode) never removes edges";
  }
}

TEST(IterationStats, Str0HalvesExactly) {
  // str0 is engineered so Borůvka's vertex count halves exactly (§5.1).
  const EdgeList g = structured_graph(0, 1024, 5);
  std::vector<core::IterationStat> stats;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorAL;
  opts.iteration_stats = &stats;
  (void)core::minimum_spanning_forest(g, opts);
  ASSERT_EQ(stats.size(), 10u) << "log2(1024) iterations";
  for (std::size_t i = 0; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].vertices, 1024u >> i) << "iteration " << i;
  }
}

TEST(StepTimes, AllVariantsPopulate) {
  const EdgeList g = random_graph(3000, 9000, 6);
  for (const auto alg : core::kParallelAlgorithms) {
    core::StepTimes st;
    core::MsfOptions opts;
    opts.algorithm = alg;
    opts.threads = 2;
    opts.bc_base_size = 64;
    opts.step_times = &st;
    (void)core::minimum_spanning_forest(g, opts);
    EXPECT_GT(st.total(), 0.0) << core::to_string(alg);
  }
}

TEST(StepTimes, AccumulateAcrossRuns) {
  const EdgeList g = random_graph(1000, 3000, 7);
  core::StepTimes st;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorEL;
  opts.step_times = &st;
  (void)core::minimum_spanning_forest(g, opts);
  const double after_one = st.total();
  (void)core::minimum_spanning_forest(g, opts);
  EXPECT_GT(st.total(), after_one) << "step_times accumulates (+=)";
}

TEST(PhaseStats, FusedAlgorithmsRunOneRegionPerIteration) {
  // The tentpole property of the fused-iteration refactor: every Borůvka
  // iteration of the fig. 2 algorithms is exactly ONE persistent SPMD region
  // (find-min, connect, compact all inside), not one region per phase.
  const EdgeList g = random_graph(5000, 20000, 21);
  for (const auto alg : {core::Algorithm::kBorEL, core::Algorithm::kBorAL,
                         core::Algorithm::kBorALM, core::Algorithm::kBorFAL}) {
    core::PhaseStats ps;
    core::MsfOptions opts;
    opts.algorithm = alg;
    opts.threads = 4;
    opts.phase_stats = &ps;
    (void)core::minimum_spanning_forest(g, opts);
    ASSERT_GT(ps.iterations, 0u) << core::to_string(alg);
    EXPECT_EQ(ps.regions, ps.iterations) << core::to_string(alg);
    EXPECT_DOUBLE_EQ(ps.regions_per_iteration(), 1.0) << core::to_string(alg);
  }
}

TEST(PhaseStats, MstBcRoundsStayWithinRegionBudget) {
  // MST-BC keeps the Prim-growth step (and the optional permutation) as
  // separate regions; the contraction cascade is fused into one.  Bound the
  // per-round region count rather than pinning it exactly.
  const EdgeList g = random_graph(5000, 20000, 22);
  core::PhaseStats ps;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kMstBC;
  opts.threads = 4;
  opts.bc_base_size = 32;
  opts.phase_stats = &ps;
  (void)core::minimum_spanning_forest(g, opts);
  ASSERT_GT(ps.iterations, 0u);
  EXPECT_LE(ps.regions_per_iteration(), 4.0);
}

TEST(CompactSortMode, RadixSampleAndHashProduceIdenticalForests) {
  // The packed-key radix path, the comparator sample path, and the radix
  // hash-map dedup must yield the same deduplicated graph, hence the same
  // forest, on every algorithm that compacts arcs.
  const EdgeList g = random_graph(4000, 16000, 23);
  for (const auto alg : {core::Algorithm::kBorEL, core::Algorithm::kMstBC,
                         core::Algorithm::kChampion}) {
    core::MsfOptions opts;
    opts.algorithm = alg;
    opts.threads = 4;
    opts.compact_sort = core::CompactSortMode::kRadix;
    const auto radix = core::minimum_spanning_forest(g, opts);
    opts.compact_sort = core::CompactSortMode::kSample;
    const auto sample = core::minimum_spanning_forest(g, opts);
    opts.compact_sort = core::CompactSortMode::kHash;
    const auto hash = core::minimum_spanning_forest(g, opts);
    EXPECT_EQ(test::sorted_ids(radix), test::sorted_ids(sample))
        << core::to_string(alg);
    EXPECT_EQ(test::sorted_ids(radix), test::sorted_ids(hash))
        << core::to_string(alg);
    EXPECT_DOUBLE_EQ(radix.total_weight, sample.total_weight)
        << core::to_string(alg);
    EXPECT_DOUBLE_EQ(radix.total_weight, hash.total_weight)
        << core::to_string(alg);
  }
}

TEST(TuningOverrides, PerCallCutoffsRestoreGlobals) {
  const std::size_t pf_before = parallel_for_cutoff();
  const std::size_t ss_before = sample_sort_cutoff();
  const EdgeList g = random_graph(2000, 8000, 24);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorEL;
  opts.threads = 4;
  opts.parallel_for_cutoff = 64;
  opts.sample_sort_cutoff = 1024;
  const auto tuned = core::minimum_spanning_forest(g, opts);
  // Cutoffs only steer parallel/sequential dispatch, never the result…
  core::MsfOptions plain;
  plain.algorithm = core::Algorithm::kBorEL;
  plain.threads = 4;
  const auto ref = core::minimum_spanning_forest(g, plain);
  EXPECT_EQ(test::sorted_ids(tuned), test::sorted_ids(ref));
  // …and the per-call override restores the process-wide defaults on exit.
  EXPECT_EQ(parallel_for_cutoff(), pf_before);
  EXPECT_EQ(sample_sort_cutoff(), ss_before);
}

TEST(AlgorithmNames, AllDistinct) {
  EXPECT_EQ(core::to_string(core::Algorithm::kBorEL), "Bor-EL");
  EXPECT_EQ(core::to_string(core::Algorithm::kBorAL), "Bor-AL");
  EXPECT_EQ(core::to_string(core::Algorithm::kBorALM), "Bor-ALM");
  EXPECT_EQ(core::to_string(core::Algorithm::kBorFAL), "Bor-FAL");
  EXPECT_EQ(core::to_string(core::Algorithm::kMstBC), "MST-BC");
  EXPECT_EQ(core::to_string(core::Algorithm::kSeqPrim), "Prim");
  EXPECT_EQ(core::to_string(core::Algorithm::kSeqKruskal), "Kruskal");
  EXPECT_EQ(core::to_string(core::Algorithm::kSeqBoruvka), "Boruvka");
}

TEST(Dispatcher, RoutesSequentialAlgorithms) {
  const EdgeList g = random_graph(300, 900, 8);
  const auto ref = test::sorted_ids(core::minimum_spanning_forest(
      g, {.algorithm = core::Algorithm::kSeqKruskal}));
  for (const auto alg :
       {core::Algorithm::kSeqPrim, core::Algorithm::kSeqBoruvka}) {
    core::MsfOptions opts;
    opts.algorithm = alg;
    EXPECT_EQ(test::sorted_ids(core::minimum_spanning_forest(g, opts)), ref);
  }
}

}  // namespace
