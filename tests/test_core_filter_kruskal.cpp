// Filter-Kruskal (extension module): exact agreement with Kruskal across
// densities and thread counts, plus behaviour around the base-case cutoff.
#include <gtest/gtest.h>

#include "core/filter_kruskal.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

MsfResult fk(const EdgeList& g, int threads) {
  return core::filter_kruskal_msf(g, threads);
}

class FilterKruskalThreads : public ::testing::TestWithParam<int> {};

TEST_P(FilterKruskalThreads, MatchesKruskalAcrossDensities) {
  const int threads = GetParam();
  for (const EdgeId density : {1u, 2u, 8u, 32u}) {
    const VertexId n = 3000;
    const EdgeList g = random_graph(n, density * n, 7 + density);
    const auto ref = seq::kruskal_msf(g);
    const auto got = fk(g, threads);
    EXPECT_EQ(test::sorted_ids(got), test::sorted_ids(ref))
        << "density " << density << " threads " << threads;
    EXPECT_WEIGHT_EQ(got.total_weight, ref.total_weight);
    EXPECT_EQ(got.num_trees, ref.num_trees);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, FilterKruskalThreads, ::testing::Values(1, 2, 8));

TEST(FilterKruskal, ZooAgreement) {
  const EdgeList graphs[] = {
      mesh2d(50, 50, 1),          geometric_knn(2000, 6, 2),
      structured_graph(0, 1024, 3), structured_graph(3, 1000, 4),
      mesh3d_p(12, 12, 12, 0.4, 5), random_graph(4000, 2000, 6),  // disconnected
  };
  for (const auto& g : graphs) {
    const auto ref = seq::kruskal_msf(g);
    const auto got = fk(g, 4);
    ASSERT_EQ(test::sorted_ids(got), test::sorted_ids(ref));
    const auto chk = validate_spanning_forest(g, got.edges);
    EXPECT_TRUE(chk.ok) << chk.error;
  }
}

TEST(FilterKruskal, SmallInputsHitBaseCaseOnly) {
  // Below the 1024-edge cutoff the recursion never pivots.
  const EdgeList g = random_graph(200, 800, 9);
  EXPECT_EQ(test::sorted_ids(fk(g, 1)), test::sorted_ids(seq::kruskal_msf(g)));
}

TEST(FilterKruskal, JustAboveBaseCase) {
  const EdgeList g = random_graph(400, 1100, 10);
  EXPECT_EQ(test::sorted_ids(fk(g, 2)), test::sorted_ids(seq::kruskal_msf(g)));
}

TEST(FilterKruskal, AllEqualWeights) {
  // Degenerate pivoting: all keys tie on weight (broken only by id).
  EdgeList g(500);
  for (VertexId v = 1; v < 500; ++v) g.add_edge(v - 1, v, 1.0);
  for (VertexId v = 2; v < 500; v += 2) g.add_edge(v - 2, v, 1.0);
  const auto ref = seq::kruskal_msf(g);
  EXPECT_EQ(test::sorted_ids(fk(g, 4)), test::sorted_ids(ref));
}

TEST(FilterKruskal, AllEqualWeightsAboveBaseCase) {
  // Same degenerate tie-break, but large enough that the recursion must
  // pivot on a weight every remaining edge shares.  Partitioning then
  // degenerates and correctness rests entirely on the <weight, id> order.
  EdgeList g(2000);
  for (VertexId v = 1; v < 2000; ++v) g.add_edge(v - 1, v, 2.5);
  for (VertexId v = 3; v < 2000; v += 3) g.add_edge(v - 3, v, 2.5);
  for (VertexId v = 7; v < 2000; v += 7) g.add_edge(v - 7, v, 2.5);
  const auto ref = seq::kruskal_msf(g);
  for (int threads : {1, 2, 4, 8}) {
    const auto got = fk(g, threads);
    EXPECT_EQ(test::sorted_ids(got), test::sorted_ids(ref)) << threads;
    EXPECT_WEIGHT_EQ(got.total_weight, ref.total_weight);
  }
}

TEST(FilterKruskal, NinetyPercentDuplicateWeights) {
  // 90% of edges share one of three weight classes; only 10% are distinct.
  // Pivot selection keeps landing inside a huge tie class, so both the
  // partition step and the filter must respect the id tie-break exactly.
  EdgeList g = random_graph(3000, 24000, 13);
  const Weight classes[3] = {0.25, 0.5, 0.75};
  for (EdgeId i = 0; i < g.num_edges(); ++i) {
    if (i % 10 != 9) g.edges[i].w = classes[i % 3];
  }
  const auto ref = seq::kruskal_msf(g);
  for (int threads : {1, 2, 4, 8}) {
    const auto got = fk(g, threads);
    EXPECT_EQ(test::sorted_ids(got), test::sorted_ids(ref)) << threads;
    EXPECT_WEIGHT_EQ(got.total_weight, ref.total_weight);
    EXPECT_EQ(got.num_trees, ref.num_trees);
  }
}

TEST(FilterKruskal, TrivialInputs) {
  EXPECT_TRUE(fk(EdgeList(0), 2).edges.empty());
  EXPECT_TRUE(fk(EdgeList(5), 2).edges.empty());
  EdgeList g(2);
  g.add_edge(0, 1, 3.0);
  const auto r = fk(g, 2);
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(r.total_weight, 3.0);
}

TEST(FilterKruskal, FilteringActuallyHelpsOnDenseInput) {
  // Structural check of the cycle property at work: on a dense graph the
  // result still matches, and (indirectly) the filter must have dropped
  // most heavy edges or the recursion would blow the stack.
  const EdgeList g = random_graph(300, 40000, 11);
  EXPECT_EQ(test::sorted_ids(fk(g, 4)), test::sorted_ids(seq::kruskal_msf(g)));
}

}  // namespace
