// Sample-and-filter MSF (Cole–Klein–Tarjan-style extension).
#include <gtest/gtest.h>

#include "core/sample_filter.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

class SampleFilterThreads : public ::testing::TestWithParam<int> {};

TEST_P(SampleFilterThreads, MatchesKruskalAcrossDensities) {
  const int threads = GetParam();
  for (const EdgeId density : {3u, 8u, 24u}) {
    const VertexId n = 2000;
    const EdgeList g = random_graph(n, density * n, density);
    const auto ref = seq::kruskal_msf(g);
    const auto got = core::sample_filter_msf(g, threads, /*seed=*/42);
    EXPECT_EQ(test::sorted_ids(got), test::sorted_ids(ref))
        << "density " << density << " threads " << threads;
    EXPECT_WEIGHT_EQ(got.total_weight, ref.total_weight);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, SampleFilterThreads, ::testing::Values(1, 4));

TEST(SampleFilter, ResultIndependentOfSeed) {
  // Randomness must only affect the running time, never the forest.
  const EdgeList g = random_graph(3000, 20000, 1);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  for (const std::uint64_t seed : {1ull, 2ull, 99ull, 12345ull}) {
    EXPECT_EQ(test::sorted_ids(core::sample_filter_msf(g, 2, seed)), ref)
        << "seed " << seed;
  }
}

TEST(SampleFilter, ZooAgreement) {
  const EdgeList graphs[] = {
      mesh2d(50, 50, 1),
      geometric_knn(2500, 6, 2),
      structured_graph(2, 2048, 3),
      rmat_graph(12, 30000, 4),
      random_graph(4000, 2000, 5),  // disconnected forest case
  };
  for (const auto& g : graphs) {
    const auto ref = seq::kruskal_msf(g);
    const auto got = core::sample_filter_msf(g, 4, 7);
    ASSERT_EQ(test::sorted_ids(got), test::sorted_ids(ref));
    EXPECT_EQ(got.num_trees, ref.num_trees);
    const auto chk = validate_spanning_forest(g, got.edges);
    EXPECT_TRUE(chk.ok) << chk.error;
  }
}

TEST(SampleFilter, TrivialInputs) {
  EXPECT_TRUE(core::sample_filter_msf(EdgeList(0), 2).edges.empty());
  EXPECT_TRUE(core::sample_filter_msf(EdgeList(10), 2).edges.empty());
  EdgeList g(2);
  g.add_edge(0, 1, 4.0);
  const auto r = core::sample_filter_msf(g, 2);
  ASSERT_EQ(r.edges.size(), 1u);
  EXPECT_DOUBLE_EQ(r.total_weight, 4.0);
}

TEST(SampleFilter, DenseInputExercisesRecursion) {
  // m >> 2n forces at least one sampling level before the Kruskal base.
  const EdgeList g = random_graph(500, 60000, 9);
  EXPECT_EQ(test::sorted_ids(core::sample_filter_msf(g, 4, 5)),
            test::sorted_ids(seq::kruskal_msf(g)));
}

}  // namespace
