// Sequential baselines: hand-computed answers, mutual agreement, and the cut
// property on the full generator zoo.
#include <gtest/gtest.h>

#include <tuple>

#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(SeqMsf, HandComputedTriangle) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  g.add_edge(0, 2, 3.0);
  for (const auto& r : {seq::prim_msf(g), seq::kruskal_msf(g), seq::boruvka_msf(g)}) {
    EXPECT_DOUBLE_EQ(r.total_weight, 3.0);
    EXPECT_EQ(r.edges.size(), 2u);
    EXPECT_EQ(r.num_trees, 1u);
  }
}

TEST(SeqMsf, HandComputedWikipediaStyleGraph) {
  // The classic 7-vertex Kruskal illustration:
  //   0-1:7 0-3:5 1-2:8 1-3:9 1-4:7 2-4:5 3-4:15 3-5:6 4-5:8 4-6:9 5-6:11
  // MST = {0-3(5), 2-4(5), 3-5(6), 0-1(7), 1-4(7), 4-6(9)}, weight 39.
  EdgeList g(7);
  g.add_edge(0, 1, 7);
  g.add_edge(0, 3, 5);
  g.add_edge(1, 2, 8);
  g.add_edge(1, 3, 9);
  g.add_edge(1, 4, 7);
  g.add_edge(2, 4, 5);
  g.add_edge(3, 4, 15);
  g.add_edge(3, 5, 6);
  g.add_edge(4, 5, 8);
  g.add_edge(4, 6, 9);
  g.add_edge(5, 6, 11);
  for (const auto& r : {seq::prim_msf(g), seq::kruskal_msf(g), seq::boruvka_msf(g)}) {
    EXPECT_DOUBLE_EQ(r.total_weight, 39.0);
    EXPECT_EQ(r.edges.size(), 6u);
  }
}

TEST(SeqMsf, EqualWeightsResolvedByEdgeIndex) {
  // All weights equal: the forest must be the one picking lowest-index edges
  // (our WeightOrder tie-break), identically in all three algorithms.
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);  // id 0
  g.add_edge(1, 2, 1.0);  // id 1
  g.add_edge(2, 3, 1.0);  // id 2
  g.add_edge(3, 0, 1.0);  // id 3
  g.add_edge(0, 2, 1.0);  // id 4
  const std::vector<EdgeId> expect = {0, 1, 2};
  EXPECT_EQ(test::sorted_ids(seq::prim_msf(g)), expect);
  EXPECT_EQ(test::sorted_ids(seq::kruskal_msf(g)), expect);
  EXPECT_EQ(test::sorted_ids(seq::boruvka_msf(g)), expect);
}

TEST(SeqMsf, EmptyAndTrivialGraphs) {
  for (const auto& g : {EdgeList(0), EdgeList(1), EdgeList(10)}) {
    for (const auto& r :
         {seq::prim_msf(g), seq::kruskal_msf(g), seq::boruvka_msf(g)}) {
      EXPECT_TRUE(r.edges.empty());
      EXPECT_DOUBLE_EQ(r.total_weight, 0.0);
      EXPECT_EQ(r.num_trees, g.num_vertices);
    }
  }
}

TEST(SeqMsf, SingleEdge) {
  EdgeList g(2);
  g.add_edge(0, 1, 3.5);
  for (const auto& r : {seq::prim_msf(g), seq::kruskal_msf(g), seq::boruvka_msf(g)}) {
    ASSERT_EQ(r.edges.size(), 1u);
    EXPECT_DOUBLE_EQ(r.total_weight, 3.5);
    EXPECT_EQ(r.num_trees, 1u);
  }
}

TEST(SeqMsf, ParallelMultiEdgesPickLightest) {
  EdgeList g(2);
  g.add_edge(0, 1, 5.0);  // id 0
  g.add_edge(0, 1, 2.0);  // id 1 — lighter duplicate
  g.add_edge(0, 1, 9.0);  // id 2
  for (const auto& r : {seq::prim_msf(g), seq::kruskal_msf(g), seq::boruvka_msf(g)}) {
    ASSERT_EQ(r.edge_ids.size(), 1u);
    EXPECT_EQ(r.edge_ids[0], 1u);
    EXPECT_DOUBLE_EQ(r.total_weight, 2.0);
  }
}

TEST(SeqMsf, DisconnectedForest) {
  EdgeList g(7);  // triangle + path + isolated vertex 6
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 2, 3);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 5, 2);
  for (const auto& r : {seq::prim_msf(g), seq::kruskal_msf(g), seq::boruvka_msf(g)}) {
    EXPECT_EQ(r.edges.size(), 4u);
    EXPECT_EQ(r.num_trees, 3u);
    EXPECT_DOUBLE_EQ(r.total_weight, 6.0);
  }
}

// Agreement + structural validity + cut property across the generator zoo.
struct ZooCase {
  const char* name;
  EdgeList graph;
};

std::vector<ZooCase> zoo() {
  std::vector<ZooCase> z;
  z.push_back({"random", random_graph(400, 1600, 1)});
  z.push_back({"very-sparse-random", random_graph(400, 300, 2)});
  z.push_back({"mesh2d", mesh2d(20, 20, 3)});
  z.push_back({"mesh2d60", mesh2d_p(20, 20, 0.6, 4)});
  z.push_back({"mesh3d40", mesh3d_p(8, 8, 8, 0.4, 5)});
  z.push_back({"geometric", geometric_knn(400, 5, 6)});
  z.push_back({"str0", structured_graph(0, 256, 7)});
  z.push_back({"str1", structured_graph(1, 256, 8)});
  z.push_back({"str2", structured_graph(2, 256, 9)});
  z.push_back({"str3", structured_graph(3, 256, 10)});
  return z;
}

TEST(SeqMsf, AllFourAgreeOnZoo) {
  for (const auto& zc : zoo()) {
    const auto kruskal = seq::kruskal_msf(zc.graph);
    const auto prim = seq::prim_msf(zc.graph);
    const auto boruvka = seq::boruvka_msf(zc.graph);
    const auto boruvka_c = seq::boruvka_compact_msf(zc.graph);
    EXPECT_EQ(test::sorted_ids(prim), test::sorted_ids(kruskal)) << zc.name;
    EXPECT_EQ(test::sorted_ids(boruvka), test::sorted_ids(kruskal)) << zc.name;
    EXPECT_EQ(test::sorted_ids(boruvka_c), test::sorted_ids(kruskal)) << zc.name;
    const auto chk = validate_spanning_forest(zc.graph, kruskal.edges);
    EXPECT_TRUE(chk.ok) << zc.name << ": " << chk.error;
  }
}

TEST(SeqMsf, BoruvkaCompactHandlesDegenerateInputs) {
  for (const auto& g : {EdgeList(0), EdgeList(3)}) {
    const auto r = seq::boruvka_compact_msf(g);
    EXPECT_TRUE(r.edges.empty());
    EXPECT_EQ(r.num_trees, g.num_vertices);
  }
  EdgeList multi(2);
  multi.add_edge(0, 1, 5.0);
  multi.add_edge(0, 1, 2.0);
  const auto r = seq::boruvka_compact_msf(multi);
  ASSERT_EQ(r.edge_ids.size(), 1u);
  EXPECT_EQ(r.edge_ids[0], 1u);
}

TEST(SeqMsf, CutPropertyHoldsOnSmallZoo) {
  for (const auto& zc : zoo()) {
    if (zc.graph.num_vertices > 450) continue;  // O(t*m) check, keep it small
    const auto msf = seq::kruskal_msf(zc.graph);
    std::string err;
    EXPECT_TRUE(verify_cut_property(zc.graph, msf.edges, &err)) << zc.name << ": " << err;
  }
}

TEST(SeqMsf, StructuredGraphsEntireTreeIsTheMsf) {
  // str* inputs are trees: the MSF must contain every edge.
  for (int variant = 0; variant < 4; ++variant) {
    const EdgeList g = structured_graph(variant, 500, 11);
    const auto r = seq::kruskal_msf(g);
    EXPECT_EQ(r.edges.size(), g.num_edges()) << "str" << variant;
    EXPECT_NEAR(r.total_weight, g.total_weight(), 1e-9 * g.total_weight())
        << "str" << variant;
  }
}

}  // namespace
