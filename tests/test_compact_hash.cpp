// The PR-7 compact-graph mechanisms, tested from the primitive up: the
// radix hash-map dedup, hash-mode compact-graph on adversarial multigraphs,
// deferred compaction vs. the eager reference loops, and the champion
// pipeline that auto-selects between them.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <numeric>
#include <random>
#include <tuple>
#include <utility>
#include <vector>

#include "core/deferred_el.hpp"
#include "core/detail.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "pprim/fault.hpp"
#include "pprim/radix_hash_map.hpp"
#include "pprim/thread_team.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

// ---------------------------------------------------------------------------
// Adversarial multigraph builders.  EdgeList permits parallel edges (only
// self-loops are rejected), which is exactly what the hash dedup must chew
// through: few distinct ⟨u, v⟩ pairs, many arcs per pair.

/// Every edge connects the same two vertices: the whole graph is ONE hash
/// key, so every arc of one bucket probes the same slot.
EdgeList all_parallel_graph(int copies, std::uint64_t seed) {
  EdgeList g(4);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> w(0.0, 1.0);
  for (int i = 0; i < copies; ++i) g.add_edge(0, 1, w(rng));
  g.add_edge(1, 2, w(rng));
  g.add_edge(2, 3, w(rng));
  return g;
}

/// Every weight identical: winners are decided purely by the WeightOrder
/// orig-index tiebreak, so any encounter-order dependence shows up as a
/// forest mismatch.
EdgeList equal_weight_graph(VertexId n, int m, std::uint64_t seed) {
  EdgeList g(n);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> v(0, n - 1);
  for (int i = 0; i < m;) {
    const VertexId a = v(rng), b = v(rng);
    if (a == b) continue;
    g.add_edge(a, b, 1.0);
    ++i;
  }
  return g;
}

/// >90% duplicate pairs: m edges drawn from a pool of distinct pairs that is
/// less than a tenth of m, so nearly every arc is a parallel copy.
EdgeList mostly_duplicate_graph(VertexId n, int pairs, int m,
                                std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<VertexId> v(0, n - 1);
  std::vector<std::pair<VertexId, VertexId>> pool;
  while (static_cast<int>(pool.size()) < pairs) {
    const VertexId a = v(rng), b = v(rng);
    if (a != b) pool.emplace_back(a, b);
  }
  EdgeList g(n);
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  std::uniform_real_distribution<double> w(0.0, 1.0);
  for (int i = 0; i < m; ++i) {
    const auto [a, b] = pool[pick(rng)];
    g.add_edge(a, b, w(rng));
  }
  return g;
}

// ---------------------------------------------------------------------------
// RadixHashMap: the primitive, against a sequential reference.

struct Item {
  std::uint64_t key;
  std::uint64_t val;
};

constexpr auto kItemKey = [](const Item& x) { return x.key; };
constexpr auto kItemBetter = [](const Item& a, const Item& b) {
  return a.val < b.val;
};

std::vector<Item> make_items(std::size_t n, std::uint64_t key_range,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> k(0, key_range - 1);
  std::vector<Item> items(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Distinct values keep kItemBetter a strict total order within a key.
    items[i] = {k(rng), (rng() << 20) | i};
  }
  return items;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> as_pairs(
    const std::vector<Item>& items) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(items.size());
  for (const auto& x : items) out.emplace_back(x.key, x.val);
  return out;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> reference_dedup(
    const std::vector<Item>& items) {
  std::map<std::uint64_t, std::uint64_t> best;
  for (const auto& x : items) {
    auto [it, fresh] = best.emplace(x.key, x.val);
    if (!fresh && x.val < it->second) it->second = x.val;
  }
  return {best.begin(), best.end()};
}

TEST(RadixHashMap, KeepsMinElementPerKey) {
  // Well above kCompactHashSeqCutoff so the bucketed parallel path runs.
  auto items = make_items(40000, 1500, 101);
  const auto want = reference_dedup(items);
  ThreadTeam team(4);
  HashDedupStats stats;
  radix_hash_dedup(team, items, kItemKey, kItemBetter, &stats);
  auto got = as_pairs(items);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
  EXPECT_EQ(stats.keys, 40000u);
  EXPECT_EQ(stats.dedup_calls, 1u);
}

TEST(RadixHashMap, OutputIdenticalAcrossThreadCounts) {
  // Not just the same *set*: the scatter order is deterministic, so the
  // byte-for-byte sequence must agree for p ∈ {1, 2, 4, 8} on both the
  // sequential-cutoff path (small n) and the bucketed path (large n).
  for (const std::size_t n : {std::size_t{3000}, std::size_t{50000}}) {
    const auto input = make_items(n, 700, 202);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> first;
    for (const int p : {1, 2, 4, 8}) {
      auto items = input;
      ThreadTeam team(p);
      radix_hash_dedup(team, items, kItemKey, kItemBetter);
      if (p == 1) {
        first = as_pairs(items);
      } else {
        EXPECT_EQ(as_pairs(items), first) << "n=" << n << " p=" << p;
      }
    }
  }
}

TEST(RadixHashMap, AllIdenticalKeysCollapseToSingleWinner) {
  // Worst-case probe distribution: every element lands in one bucket's one
  // home slot.
  std::vector<Item> items(30000);
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = {42, items.size() - i};
  }
  ThreadTeam team(4);
  HashDedupStats stats;
  radix_hash_dedup(team, items, kItemKey, kItemBetter, &stats);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].key, 42u);
  EXPECT_EQ(items[0].val, 1u);
  EXPECT_EQ(stats.keys, 30000u);
}

TEST(RadixHashMap, EmptyAndTinyInputs) {
  ThreadTeam team(4);
  std::vector<Item> items;
  radix_hash_dedup(team, items, kItemKey, kItemBetter);
  EXPECT_TRUE(items.empty());
  items = {{7, 9}};
  radix_hash_dedup(team, items, kItemKey, kItemBetter);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].val, 9u);
  items = {{7, 9}, {3, 5}, {7, 2}};
  radix_hash_dedup(team, items, kItemKey, kItemBetter);
  auto got = as_pairs(items);
  std::sort(got.begin(), got.end());
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> want = {{3, 5},
                                                                     {7, 2}};
  EXPECT_EQ(got, want);
}

TEST(RadixHashMap, StatsAccumulateAcrossCallsAndScratchReleases) {
  ThreadTeam team(2);
  RadixHashMapScratch<Item> scratch;
  HashDedupStats stats;
  for (int call = 0; call < 2; ++call) {
    auto items = make_items(20000, std::uint64_t{1} << 40, 303 + call);
    team.run([&](TeamCtx& ctx) {
      radix_hash_dedup_in_region(ctx, items, scratch, kItemKey, kItemBetter,
                                 &stats);
    });
  }
  EXPECT_EQ(stats.dedup_calls, 2u);
  EXPECT_EQ(stats.keys, 40000u);
  // ~20000 distinct keys hashed into power-of-two tables: some pair lands
  // on the same home slot, so the probe counters must be non-trivial.
  EXPECT_GT(stats.probe_steps, 0u);
  EXPECT_GE(stats.max_probe, 1u);
  // The scratch retains its slabs across calls; release() hands every byte
  // back so CompactScratch::maybe_release can shed the peak footprint.
  EXPECT_GT(scratch.footprint_bytes(), 0u);
  scratch.release();
  EXPECT_EQ(scratch.footprint_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// CompactHash: hash-mode compact-graph, arc-level and end-to-end.

TEST(CompactHash, ArcLevelMatchesRadixDedup) {
  const EdgeList g = mostly_duplicate_graph(500, 900, 30000, 404);
  std::vector<core::DirEdge> arcs;
  arcs.reserve(2 * g.edges.size());
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    arcs.push_back({e.u, e.v, e.w, i});
    arcs.push_back({e.v, e.u, e.w, i});
  }
  std::vector<VertexId> labels(g.num_vertices);
  std::iota(labels.begin(), labels.end(), VertexId{0});
  ThreadTeam team(4);
  auto radix = core::detail::compact_arcs(team, std::vector<core::DirEdge>(arcs),
                                          labels, core::CompactSortMode::kRadix);
  auto hash = core::detail::compact_arcs(team, std::move(arcs), labels,
                                         core::CompactSortMode::kHash);
  const core::DirEdgeCompactLess less;
  std::sort(radix.begin(), radix.end(), less);
  std::sort(hash.begin(), hash.end(), less);
  ASSERT_EQ(radix.size(), hash.size());
  for (std::size_t i = 0; i < radix.size(); ++i) {
    EXPECT_EQ(radix[i].u, hash[i].u) << i;
    EXPECT_EQ(radix[i].v, hash[i].v) << i;
    EXPECT_EQ(radix[i].w, hash[i].w) << i;
    EXPECT_EQ(radix[i].orig, hash[i].orig) << i;
  }
}

TEST(CompactHash, AdversarialMultigraphsMatchKruskal) {
  const struct {
    const char* name;
    EdgeList g;
  } cases[] = {
      {"all-parallel", all_parallel_graph(20000, 505)},
      {"equal-weights", equal_weight_graph(400, 24000, 506)},
      {"mostly-duplicate", mostly_duplicate_graph(400, 800, 25000, 507)},
  };
  for (const auto& c : cases) {
    const auto ref = test::sorted_ids(seq::kruskal_msf(c.g));
    // Eager Bor-EL compacts every iteration, so kHash runs immediately…
    core::MsfOptions eager;
    eager.algorithm = core::Algorithm::kBorEL;
    eager.threads = 4;
    eager.deferred_compact = core::DeferredCompactMode::kOff;
    eager.compact_sort = core::CompactSortMode::kHash;
    EXPECT_EQ(test::sorted_ids(core::minimum_spanning_forest(c.g, eager)), ref)
        << c.name;
    // …and the champion default (deferred, hash full-compacts) must agree.
    core::MsfOptions champ;
    champ.threads = 4;
    EXPECT_EQ(test::sorted_ids(core::minimum_spanning_forest(c.g, champ)), ref)
        << c.name;
    // Forcing full compacts on every iteration exercises the hash rebuild on
    // these small graphs (the default threshold would defer throughout).
    champ.compact_live_threshold = 0.99;
    EXPECT_EQ(test::sorted_ids(core::minimum_spanning_forest(c.g, champ)), ref)
        << c.name;
  }
}

TEST(CompactHash, BitIdenticalAcrossThreadCounts) {
  const EdgeList graphs[] = {
      mostly_duplicate_graph(600, 1200, 40000, 608),
      mesh2d(40, 40, 609),
  };
  for (const auto& g : graphs) {
    for (const auto alg :
         {core::Algorithm::kBorEL, core::Algorithm::kChampion}) {
      std::vector<EdgeId> first;
      double first_weight = 0.0;
      for (const int p : {1, 2, 4, 8}) {
        core::MsfOptions opts;
        opts.algorithm = alg;
        opts.threads = p;
        opts.compact_sort = core::CompactSortMode::kHash;
        opts.compact_live_threshold = 0.99;  // force hash compacts to run
        const auto r = core::minimum_spanning_forest(g, opts);
        if (p == 1) {
          first = test::sorted_ids(r);
          first_weight = r.total_weight;
        } else {
          EXPECT_EQ(test::sorted_ids(r), first)
              << core::to_string(alg) << " p=" << p;
          EXPECT_WEIGHT_EQ(r.total_weight, first_weight);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// DeferredCompact: watermark pruning vs. the eager reference loops.

TEST(DeferredCompact, MatchesEagerForEveryEdgeVariant) {
  const EdgeList graphs[] = {
      random_graph(4000, 16000, 710),
      mesh2d(50, 50, 711),
      mostly_duplicate_graph(500, 1000, 30000, 712),
  };
  for (const auto& g : graphs) {
    for (const auto alg : {core::Algorithm::kBorEL, core::Algorithm::kBorAL,
                           core::Algorithm::kBorALM}) {
      for (const int p : {1, 4}) {
        core::MsfOptions eager;
        eager.algorithm = alg;
        eager.threads = p;
        eager.deferred_compact = core::DeferredCompactMode::kOff;
        const auto ref = core::minimum_spanning_forest(g, eager);
        core::MsfOptions deferred;
        deferred.algorithm = alg;
        deferred.threads = p;
        const auto got = core::minimum_spanning_forest(g, deferred);
        EXPECT_EQ(test::sorted_ids(got), test::sorted_ids(ref))
            << core::to_string(alg) << " p=" << p;
        EXPECT_WEIGHT_EQ(got.total_weight, ref.total_weight);
      }
    }
  }
}

TEST(DeferredCompact, ThresholdExtremesStillCorrect) {
  // 1e-9 never rebuilds (pure deferral to the end); 0.99 rebuilds almost
  // every iteration.  Both extremes must produce Kruskal's forest.
  const EdgeList g = random_graph(3000, 12000, 813);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  for (const auto alg : {core::Algorithm::kBorEL, core::Algorithm::kBorAL,
                         core::Algorithm::kBorALM,
                         core::Algorithm::kChampion}) {
    for (const double threshold : {1e-9, 0.99}) {
      core::MsfOptions opts;
      opts.algorithm = alg;
      opts.threads = 4;
      opts.compact_live_threshold = threshold;
      EXPECT_EQ(test::sorted_ids(core::minimum_spanning_forest(g, opts)), ref)
          << core::to_string(alg) << " threshold=" << threshold;
    }
  }
}

TEST(DeferredCompact, StatsExposeStrategyAndLiveFraction) {
  const EdgeList g = random_graph(8000, 32000, 914);
  std::vector<core::IterationStat> stats;
  core::PhaseStats ps;
  core::MsfOptions opts;
  opts.threads = 4;  // champion default
  opts.compact_live_threshold = 0.99;
  opts.iteration_stats = &stats;
  opts.phase_stats = &ps;
  (void)core::minimum_spanning_forest(g, opts);
  ASSERT_FALSE(stats.empty());
  for (const auto& s : stats) {
    EXPECT_GE(s.live_fraction, 0.0);
    EXPECT_LE(s.live_fraction, 1.0);
    EXPECT_TRUE(s.strategy == core::CompactStrategy::kDefer ||
                s.strategy == core::CompactStrategy::kHash ||
                s.strategy == core::CompactStrategy::kSort)
        << core::to_string(s.strategy);
  }
  // The aggressive threshold forces full hash compacts, so the probe
  // statistics must be populated and consistent.
  EXPECT_GE(ps.hash_compacts, 1u);
  EXPECT_GT(ps.hash_keys, 0u);
  EXPECT_GE(ps.hash_max_probe, 0u);
  // With the default threshold the deferred engine (Bor-EL under kAuto)
  // defers instead of compacting.
  std::vector<core::IterationStat> defer_stats;
  core::MsfOptions lazy;
  lazy.algorithm = core::Algorithm::kBorEL;
  lazy.threads = 4;
  lazy.iteration_stats = &defer_stats;
  core::PhaseStats lazy_ps;
  lazy.phase_stats = &lazy_ps;
  (void)core::minimum_spanning_forest(g, lazy);
  EXPECT_GE(lazy_ps.deferred_iterations, 1u);
  ASSERT_FALSE(defer_stats.empty());
  EXPECT_TRUE(std::any_of(defer_stats.begin(), defer_stats.end(),
                          [](const core::IterationStat& s) {
                            return s.strategy == core::CompactStrategy::kDefer;
                          }));
  // The champion default picks the Bor-FAL engine (BENCH_07: vertex-parallel
  // find-min wins), and that choice is observable in the recorded strategy.
  std::vector<core::IterationStat> champ_stats;
  core::MsfOptions champ;
  champ.threads = 4;
  champ.iteration_stats = &champ_stats;
  (void)core::minimum_spanning_forest(g, champ);
  ASSERT_FALSE(champ_stats.empty());
  for (const auto& s : champ_stats) {
    EXPECT_EQ(s.strategy, core::CompactStrategy::kPointer);
    EXPECT_GE(s.live_fraction, 0.0);
    EXPECT_LE(s.live_fraction, 1.0);
  }
}

TEST(DeferredCompact, CompactScratchReleaseIsObservable) {
  // Build a peak-sized compact, then show maybe_release() returns the slabs
  // once the working set collapses — and retains them while it does not.
  const EdgeList g = mostly_duplicate_graph(600, 1200, 60000, 915);
  std::vector<core::DirEdge> arcs;
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const auto& e = g.edges[i];
    arcs.push_back({e.u, e.v, e.w, i});
    arcs.push_back({e.v, e.u, e.w, i});
  }
  std::vector<VertexId> labels(g.num_vertices);
  std::iota(labels.begin(), labels.end(), VertexId{0});
  ThreadTeam team(4);
  core::detail::CompactScratch scratch;
  for (const auto mode :
       {core::CompactSortMode::kRadix, core::CompactSortMode::kHash}) {
    auto work = arcs;
    team.run([&](TeamCtx& ctx) {
      core::detail::compact_arcs_in_region(ctx, work, labels, mode, scratch);
    });
  }
  const std::size_t peak = scratch.footprint_bytes();
  ASSERT_GT(peak, 0u);
  // A same-scale compact keeps the slabs (grow-only plateau)…
  scratch.maybe_release(arcs.size());
  EXPECT_EQ(scratch.footprint_bytes(), peak);
  // …but once the arc count collapses below capacity / kShrinkDivisor the
  // buffers go back to the allocator, observably.
  scratch.maybe_release(64);
  EXPECT_EQ(scratch.footprint_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Champion: the auto-tuned pipeline.

TEST(Champion, IsTheDefaultAlgorithm) {
  EXPECT_EQ(core::MsfOptions{}.algorithm, core::Algorithm::kChampion);
  const EdgeList g = random_graph(2000, 8000, 110);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  EXPECT_EQ(test::sorted_ids(core::minimum_spanning_forest(g, {})), ref);
}

TEST(Champion, MatchesPaperVariantsAcrossThreadCounts) {
  const EdgeList graphs[] = {
      random_graph(4000, 16000, 111),
      mesh2d_p(45, 45, 0.6, 112),
      equal_weight_graph(500, 20000, 113),
  };
  for (const auto& g : graphs) {
    const auto ref = test::sorted_ids(seq::kruskal_msf(g));
    for (const int p : {1, 2, 4, 8}) {
      const auto champ = test::run_alg(g, core::Algorithm::kChampion, p);
      const auto fal = test::run_alg(g, core::Algorithm::kBorFAL, p);
      EXPECT_EQ(test::sorted_ids(champ), ref) << "p=" << p;
      EXPECT_EQ(test::sorted_ids(fal), test::sorted_ids(champ)) << "p=" << p;
      EXPECT_WEIGHT_EQ(champ.total_weight, fal.total_weight);
    }
  }
}

TEST(Champion, FallbackPathsMatch) {
  // Scan find-min and disabled deferral both route champion onto reference
  // paths (Bor-FAL and the eager loops); the forest must not change.
  const EdgeList g = random_graph(3000, 12000, 214);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  core::MsfOptions scan;
  scan.threads = 4;
  scan.find_min = core::FindMinMode::kScan;
  EXPECT_EQ(test::sorted_ids(core::minimum_spanning_forest(g, scan)), ref);
  core::MsfOptions off;
  off.threads = 4;
  off.deferred_compact = core::DeferredCompactMode::kOff;
  EXPECT_EQ(test::sorted_ids(core::minimum_spanning_forest(g, off)), ref);
}

class ChampionFaults : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::disarm_all(); }
};

TEST_F(ChampionFaults, FaultSitesUnwindAndTeamSurvives) {
  const EdgeList g = random_graph(4000, 16000, 315);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  ThreadTeam team(4);
  core::MsfOptions opts;
  opts.threads = 4;
  opts.compact_live_threshold = 0.99;  // make the compact sites reachable
  for (const char* site :
       {"champion.find-min", "champion.connect", "champion.connect.region",
        "champion.compact", "champion.compact.region"}) {
    FaultInjector::arm(site, FaultKind::kBadAlloc);
    EXPECT_THROW((void)core::champion_msf(team, g, opts), std::bad_alloc)
        << site;
    EXPECT_GE(FaultInjector::hits(site), 1u) << site;
    FaultInjector::disarm_all();
    // No terminate, no hung barrier — the same team solves cleanly.
    EXPECT_EQ(test::sorted_ids(core::champion_msf(team, g, opts)), ref)
        << site;
  }
}

}  // namespace
