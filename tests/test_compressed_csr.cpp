// The compressed-CSR storage layer (graph/compressed_csr.hpp) and its
// varint substrate: LEB128 edge cases across every length class including
// the 5-byte encodings at the u32 boundary, structural validation of
// adjacency regions, file round-trips, rejection of truncated and
// bit-flipped .smpz files, and — the load-bearing promise — forests
// bit-identical to the canonicalized uncompressed solve at p in {1,2,4,8}.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/compressed_solve.hpp"
#include "core/error.hpp"
#include "core/msf.hpp"
#include "graph/compressed_csr.hpp"
#include "graph/generators.hpp"
#include "pprim/machine.hpp"
#include "pprim/tuning.hpp"
#include "pprim/varint.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

std::string read_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(is), std::istreambuf_iterator<char>()};
}

void write_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Varint: every length class, with the 5-byte u32-boundary encodings.

TEST(Varint, EncodedLengthPerLengthClass) {
  const struct {
    std::uint32_t v;
    std::size_t len;
  } cases[] = {
      {0, 1},           {127, 1},
      {128, 2},         {(1u << 14) - 1, 2},
      {1u << 14, 3},    {(1u << 21) - 1, 3},
      {1u << 21, 4},    {(1u << 28) - 1, 4},
      {1u << 28, 5},    {0xFFFFFFFFu, 5},
  };
  for (const auto& c : cases) {
    std::uint8_t buf[8] = {};
    EXPECT_EQ(varint_encode_u32(c.v, buf), c.len) << c.v;
    const std::uint8_t* p = buf;
    EXPECT_EQ(varint_decode_u32(p), c.v);
    EXPECT_EQ(static_cast<std::size_t>(p - buf), c.len);
    std::uint32_t got = 0;
    std::size_t len = 0;
    ASSERT_TRUE(varint_decode_u32_checked(buf, buf + c.len, &got, &len));
    EXPECT_EQ(got, c.v);
    EXPECT_EQ(len, c.len);
  }
}

TEST(Varint, CheckedRejectsTruncation) {
  std::uint8_t buf[8] = {};
  const std::size_t len = varint_encode_u32(0xFFFFFFFFu, buf);
  ASSERT_EQ(len, 5u);
  std::uint32_t v;
  std::size_t l;
  for (std::size_t cut = 0; cut < len; ++cut) {
    EXPECT_FALSE(varint_decode_u32_checked(buf, buf + cut, &v, &l)) << cut;
  }
  EXPECT_TRUE(varint_decode_u32_checked(buf, buf + len, &v, &l));
}

TEST(Varint, CheckedRejectsOverlongAndOverflow) {
  // Six continuation bytes: structurally overlong for u32.
  const std::uint8_t overlong[] = {0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  std::uint32_t v;
  std::size_t l;
  EXPECT_FALSE(varint_decode_u32_checked(overlong, overlong + 6, &v, &l));
  // Five bytes whose final byte carries bits above 2^32 - 1.
  const std::uint8_t overflow[] = {0xFF, 0xFF, 0xFF, 0xFF, 0x7F};
  EXPECT_FALSE(varint_decode_u32_checked(overflow, overflow + 5, &v, &l));
  // The largest valid 5-byte encoding decodes fine.
  const std::uint8_t maxv[] = {0xFF, 0xFF, 0xFF, 0xFF, 0x0F};
  ASSERT_TRUE(varint_decode_u32_checked(maxv, maxv + 5, &v, &l));
  EXPECT_EQ(v, 0xFFFFFFFFu);
}

TEST(Varint, BulkDecodeCrossesEveryLengthClass) {
  // Deterministic mix hitting 1..5-byte encodings, including both u32
  // boundary values, long enough to engage the SIMD kernel's wide loads.
  std::vector<std::uint32_t> vals;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 4096; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const int cls = static_cast<int>(x >> 61) % 5;
    vals.push_back(static_cast<std::uint32_t>(x) >> (7 * (4 - cls)));
  }
  vals.push_back((1u << 28) - 1);
  vals.push_back(1u << 28);
  vals.push_back(0xFFFFFFFFu);
  std::vector<std::uint8_t> enc;
  for (const std::uint32_t v : vals) varint_append_u32(enc, v);

  ASSERT_TRUE(varint_validate_region(enc.data(), enc.data() + enc.size(),
                                     vals.size()));
  std::vector<std::uint32_t> out(vals.size());
  const std::size_t used = varint_decode_bulk(
      enc.data(), enc.data() + enc.size(), vals.size(), out.data());
  EXPECT_EQ(used, enc.size());
  EXPECT_EQ(out, vals);

  std::vector<std::uint32_t> out2(vals.size());
  std::size_t consumed = 0;
  ASSERT_TRUE(varint_decode_bulk_checked(enc.data(), enc.data() + enc.size(),
                                         vals.size(), out2.data(), &consumed));
  EXPECT_EQ(consumed, enc.size());
  EXPECT_EQ(out2, vals);
}

TEST(Varint, ValidateRegionRejectsTrailingAndTruncatedBytes) {
  std::vector<std::uint8_t> enc;
  for (std::uint32_t v : {5u, 300u, 1u << 28}) varint_append_u32(enc, v);
  const std::uint8_t* p = enc.data();
  EXPECT_TRUE(varint_validate_region(p, p + enc.size(), 3));
  EXPECT_FALSE(varint_validate_region(p, p + enc.size() - 1, 3));  // truncated
  EXPECT_FALSE(varint_validate_region(p, p + enc.size(), 2));      // trailing
  EXPECT_FALSE(varint_validate_region(p, p + enc.size(), 4));      // too few
  EXPECT_TRUE(varint_validate_region(p, p, 0));
}

// ---------------------------------------------------------------------------
// CompressedCsr structure edge cases.

TEST(CompressedCsr, EdgelessGraphAndIsolatedVertices) {
  EdgeList g;
  g.num_vertices = 5;
  const CompressedCsr cz = CompressedCsr::build(g);
  EXPECT_EQ(cz.num_vertices(), 5u);
  EXPECT_EQ(cz.num_edges(), 0u);
  for (VertexId u = 0; u < 5; ++u) EXPECT_EQ(cz.out_degree(u), 0u);
  EXPECT_TRUE(cz.decode_edge_list().edges.empty());
  const MsfResult r = core::minimum_spanning_forest_compressed(cz);
  EXPECT_EQ(r.num_trees, 5u);
  EXPECT_TRUE(r.edge_ids.empty());
}

TEST(CompressedCsr, SingleVertex) {
  EdgeList g;
  g.num_vertices = 1;
  const CompressedCsr cz = CompressedCsr::build(g);
  EXPECT_EQ(cz.num_vertices(), 1u);
  EXPECT_EQ(cz.num_edges(), 0u);
  EXPECT_EQ(core::minimum_spanning_forest_compressed(cz).num_trees, 1u);
}

TEST(CompressedCsr, MaxDegreeVertexHoldsEveryEdge) {
  // A star: upper-triangular storage puts all n-1 edges on vertex 0, the
  // max-degree row — one long gap stream, empty rows everywhere else.
  constexpr VertexId n = 300;
  EdgeList g;
  g.num_vertices = n;
  for (VertexId v = 1; v < n; ++v) {
    g.edges.push_back({0, v, static_cast<Weight>(v)});
  }
  const CompressedCsr cz = CompressedCsr::build(g);
  ASSERT_EQ(cz.num_edges(), n - 1u);
  EXPECT_EQ(cz.out_degree(0), n - 1u);
  std::vector<VertexId> row(cz.out_degree(0));
  cz.decode_row(0, row.data());
  for (VertexId v = 1; v < n; ++v) EXPECT_EQ(row[v - 1], v);
  const MsfResult r = core::minimum_spanning_forest_compressed(cz);
  EXPECT_EQ(r.num_trees, 1u);
  EXPECT_EQ(r.edge_ids.size(), n - 1u);
}

TEST(CompressedCsr, DedupKeepsCanonicalParallelEdge) {
  EdgeList g;
  g.num_vertices = 4;
  g.edges.push_back({1, 0, 5.0});  // reversed endpoints normalize to (0,1)
  g.edges.push_back({0, 1, 2.0});  // lighter: the canonical survivor
  g.edges.push_back({0, 1, 2.0});  // same weight, later input id: loses
  g.edges.push_back({2, 3, 1.0});
  std::vector<EdgeId> kept;
  const CompressedCsr cz = CompressedCsr::build(g, &kept);
  ASSERT_EQ(cz.num_edges(), 2u);
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_EQ(kept[0], 1u);  // the weight-then-input-id minimal (0,1)
  EXPECT_EQ(kept[1], 3u);
  EXPECT_EQ(cz.weight(0), 2.0);
  EXPECT_EQ(cz.weight(1), 1.0);
}

TEST(CompressedCsr, FileRoundTripIsExact) {
  const EdgeList g = random_graph(500, 2500, 99);
  const CompressedCsr built = CompressedCsr::build(g);
  const std::string path = ::testing::TempDir() + "/smpz_roundtrip.smpz";
  built.write_file(path);
  const CompressedCsr mapped = CompressedCsr::open_file(path);
  EXPECT_TRUE(mapped.mapped());
  EXPECT_FALSE(built.mapped());
  ASSERT_EQ(mapped.num_vertices(), built.num_vertices());
  ASSERT_EQ(mapped.num_edges(), built.num_edges());
  const EdgeList a = built.decode_edge_list();
  const EdgeList b = mapped.decode_edge_list();
  ASSERT_EQ(a.edges.size(), b.edges.size());
  for (std::size_t i = 0; i < a.edges.size(); ++i) {
    EXPECT_EQ(a.edges[i].u, b.edges[i].u);
    EXPECT_EQ(a.edges[i].v, b.edges[i].v);
    EXPECT_EQ(a.edges[i].w, b.edges[i].w);
  }
  std::remove(path.c_str());
}

TEST(CompressedCsr, TruncatedFilesRejectedWithPathAndOffset) {
  const EdgeList g = random_graph(200, 1000, 7);
  const std::string path = ::testing::TempDir() + "/smpz_trunc.smpz";
  CompressedCsr::build(g).write_file(path);
  const std::string whole = read_file(path);
  ASSERT_GT(whole.size(), 64u);
  // Cut inside every section: header, edge offsets, byte offsets,
  // adjacency, weights.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{16}, std::size_t{40}, whole.size() / 3,
        whole.size() / 2, whole.size() - 1}) {
    write_bytes(path, whole.substr(0, keep));
    try {
      (void)CompressedCsr::open_file(path);
      FAIL() << "accepted a file truncated to " << keep << " bytes";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << e.what();
    }
  }
  std::remove(path.c_str());
}

TEST(CompressedCsr, BitFlipFuzzNeverCrashes) {
  // Flip one byte at a stride across the whole file: open_file must either
  // reject with kInvalidInput or produce a structurally valid graph — never
  // read out of bounds (ASan job) or accept a malformed region.
  const EdgeList g = random_graph(150, 700, 21);
  const std::string path = ::testing::TempDir() + "/smpz_fuzz.smpz";
  CompressedCsr::build(g).write_file(path);
  const std::string whole = read_file(path);
  int rejected = 0, accepted = 0;
  for (std::size_t pos = 0; pos < whole.size(); pos += 13) {
    std::string bad = whole;
    bad[pos] = static_cast<char>(bad[pos] ^ 0x40);
    write_bytes(path, bad);
    try {
      const CompressedCsr cz = CompressedCsr::open_file(path);
      const EdgeList dec = cz.decode_edge_list();  // must stay in bounds
      EXPECT_EQ(dec.edges.size(), cz.num_edges());
      ++accepted;
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
      ++rejected;
    }
  }
  // The structural fields dominate the file, so most flips must be caught.
  EXPECT_GT(rejected, 0);
  SUCCEED() << rejected << " rejected, " << accepted << " benign";
  std::remove(path.c_str());
}

TEST(CompressedCsr, WriterStreamsSameBytesAsBuild) {
  const EdgeList g = random_graph(400, 2000, 5);
  const CompressedCsr built = CompressedCsr::build(g);
  const std::string ref = ::testing::TempDir() + "/smpz_ref.smpz";
  const std::string str = ::testing::TempDir() + "/smpz_stream.smpz";
  built.write_file(ref);
  {
    CompressedCsrWriter w(str, built.num_vertices());
    built.for_each_edge(
        [&](EdgeId, VertexId u, VertexId v, Weight wt) { w.add_edge(u, v, wt); });
    EXPECT_EQ(w.finish(), built.num_edges());
  }
  EXPECT_EQ(read_file(ref), read_file(str));
  std::remove(ref.c_str());
  std::remove(str.c_str());
}

// ---------------------------------------------------------------------------
// The tentpole promise: compressed and uncompressed solves agree bit for bit.

TEST(CompressedSolve, BitIdenticalForestsAcrossThreads) {
  EdgeList g = random_graph(2000, 12000, 42);
  // Salt with parallel edges and reversed endpoints so canonicalization
  // actually has work to do.
  g.edges.push_back({10, 3, 0.25});
  g.edges.push_back({3, 10, 0.25});
  g.edges.push_back({7, 7 + 1, -1.5});
  const CompressedCsr cz = CompressedCsr::build(g);
  const EdgeList decoded = cz.decode_edge_list();
  for (const auto alg : {core::Algorithm::kChampion, core::Algorithm::kBorFAL}) {
    for (const int p : {1, 2, 4, 8}) {
      core::MsfOptions opts;
      opts.algorithm = alg;
      opts.threads = p;
      const MsfResult rc = core::minimum_spanning_forest_compressed(cz, opts);
      const MsfResult ru = core::minimum_spanning_forest(decoded, opts);
      EXPECT_EQ(test::sorted_ids(rc), test::sorted_ids(ru))
          << to_string(alg) << " p=" << p;
      EXPECT_EQ(rc.total_weight, ru.total_weight) << to_string(alg) << " p=" << p;
      EXPECT_EQ(rc.num_trees, ru.num_trees);
    }
  }
}

TEST(CompressedSolve, ScanModeFallsBackToEagerDecodeIdentically) {
  const EdgeList g = random_graph(800, 4000, 11);
  const CompressedCsr cz = CompressedCsr::build(g);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorFAL;
  opts.find_min = core::FindMinMode::kScan;  // unstreamable: eager path
  opts.threads = 2;
  const MsfResult rc = core::minimum_spanning_forest_compressed(cz, opts);
  const MsfResult ru = core::minimum_spanning_forest(cz.decode_edge_list(), opts);
  EXPECT_EQ(test::sorted_ids(rc), test::sorted_ids(ru));
  EXPECT_EQ(rc.total_weight, ru.total_weight);
}

// ---------------------------------------------------------------------------
// Machine probing and auto-calibration.

TEST(Machine, ProfileIsSaneAndCached) {
  const MachineProfile& p = machine_profile();
  EXPECT_GE(p.hardware_threads, 1u);
  EXPECT_GE(p.available_threads, 1u);
  EXPECT_LE(p.available_threads, p.hardware_threads);
  EXPECT_GE(p.cache_line_bytes, 16u);
  EXPECT_GE(p.page_bytes, 512u);
  EXPECT_NE(p.simd, nullptr);
  EXPECT_EQ(&p, &machine_profile());  // cached, same object
  const std::string j = machine_profile_json();
  EXPECT_NE(j.find("\"hardware_threads\""), std::string::npos);
  EXPECT_NE(j.find("\"simd\""), std::string::npos);
}

TEST(Machine, CalibrateWithoutApplyLeavesGlobalsAlone) {
  const std::size_t pf = parallel_for_cutoff();
  const std::size_t ss = sample_sort_cutoff();
  const std::size_t hs = compact_hash_seq_cutoff();
  const CalibrationResult cal = auto_calibrate(/*apply=*/false);
  EXPECT_FALSE(cal.applied);
  EXPECT_GT(cal.parallel_for_cutoff, 0u);
  EXPECT_GT(cal.sample_sort_cutoff, 0u);
  EXPECT_GT(cal.compact_hash_seq_cutoff, 0u);
  EXPECT_EQ(parallel_for_cutoff(), pf);
  EXPECT_EQ(sample_sort_cutoff(), ss);
  EXPECT_EQ(compact_hash_seq_cutoff(), hs);
  const std::string j = calibration_json(cal);
  EXPECT_NE(j.find("\"parallel_for_cutoff\""), std::string::npos);
  EXPECT_NE(j.find("\"applied\": false"), std::string::npos);
}

TEST(Machine, CalibratedCutoffsNeverChangeTheForest) {
  // Cutoffs pick execution strategies, never outputs: solve under the
  // calibrated values and under the compile-time defaults, compare exactly.
  const EdgeList g = random_graph(1500, 9000, 33);
  const CalibrationResult cal = auto_calibrate(/*apply=*/false);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kChampion;
  opts.threads = 4;
  MsfResult def, calr;
  {
    ScopedTuning st(kDefaultParallelForCutoff, kDefaultSampleSortCutoff,
                    kCompactHashSeqCutoff);
    def = core::minimum_spanning_forest(g, opts);
  }
  {
    ScopedTuning st(cal.parallel_for_cutoff, cal.sample_sort_cutoff,
                    cal.compact_hash_seq_cutoff);
    calr = core::minimum_spanning_forest(g, opts);
  }
  EXPECT_EQ(test::sorted_ids(def), test::sorted_ids(calr));
  EXPECT_EQ(def.total_weight, calr.total_weight);
  EXPECT_EQ(def.num_trees, calr.num_trees);
}

}  // namespace
