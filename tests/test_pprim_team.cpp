// ThreadTeam, SenseBarrier, parallel_for, block_range.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "pprim/barrier.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/partition.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

TEST(BlockRange, CoversAllIndicesExactlyOnce) {
  for (const std::size_t n : {0u, 1u, 7u, 64u, 1001u}) {
    for (const int p : {1, 2, 3, 8, 13}) {
      std::vector<int> hits(n, 0);
      std::size_t max_size = 0, min_size = SIZE_MAX;
      for (int t = 0; t < p; ++t) {
        const IndexRange r = block_range(n, t, p);
        EXPECT_LE(r.begin, r.end);
        for (std::size_t i = r.begin; i < r.end; ++i) ++hits[i];
        max_size = std::max(max_size, r.size());
        min_size = std::min(min_size, r.size());
      }
      for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], 1) << "n=" << n << " p=" << p;
      EXPECT_LE(max_size - min_size, 1u) << "balance within one element";
    }
  }
}

TEST(ThreadTeam, SingleThreadRunsInline) {
  ThreadTeam team(1);
  int calls = 0;
  team.run([&](TeamCtx& ctx) {
    EXPECT_EQ(ctx.tid(), 0);
    EXPECT_EQ(ctx.nthreads(), 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadTeam, EveryThreadRunsEveryRegion) {
  ThreadTeam team(5);
  std::atomic<int> count{0};
  for (int region = 0; region < 20; ++region) {
    count.store(0);
    team.run([&](TeamCtx&) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 5) << "region " << region;
  }
}

TEST(ThreadTeam, TidsAreDistinct) {
  ThreadTeam team(7);
  std::vector<std::atomic<int>> seen(7);
  team.run([&](TeamCtx& ctx) { seen[ctx.tid()].fetch_add(1); });
  for (auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(ThreadTeam, BarrierSeparatesPhases) {
  // Each thread writes its slot in phase 1; after the barrier every thread
  // must observe all phase-1 writes.
  constexpr int kP = 6;
  ThreadTeam team(kP);
  std::vector<int> slot(kP, 0);
  std::atomic<int> failures{0};
  for (int round = 1; round <= 50; ++round) {
    team.run([&](TeamCtx& ctx) {
      slot[ctx.tid()] = round;
      ctx.barrier();
      for (int t = 0; t < kP; ++t) {
        if (slot[t] != round) failures.fetch_add(1);
      }
    });
  }
  EXPECT_EQ(failures.load(), 0);
}

TEST(ThreadTeam, ManyBarriersInOneRegion) {
  constexpr int kP = 4;
  ThreadTeam team(kP);
  std::atomic<int> counter{0};
  std::atomic<int> failures{0};
  team.run([&](TeamCtx& ctx) {
    for (int i = 1; i <= 100; ++i) {
      counter.fetch_add(1);
      ctx.barrier();
      if (counter.load() != i * kP) failures.fetch_add(1);
      ctx.barrier();
    }
  });
  EXPECT_EQ(failures.load(), 0);
}

TEST(ParallelFor, VisitsEachIndexOnce) {
  ThreadTeam team(4);
  const std::size_t n = 100000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for(team, n, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelForDynamic, VisitsEachIndexOnce) {
  ThreadTeam team(4);
  const std::size_t n = 50000;
  std::vector<std::atomic<int>> hits(n);
  parallel_for_dynamic(team, n, 64, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, ZeroAndTinySizes) {
  ThreadTeam team(3);
  int sum = 0;
  parallel_for(team, 0, [&](std::size_t) { ++sum; });
  EXPECT_EQ(sum, 0);
  std::atomic<int> asum{0};
  parallel_for(team, 5, [&](std::size_t) { asum.fetch_add(1); });
  EXPECT_EQ(asum.load(), 5);
}

TEST(SenseBarrier, ReusableAcrossGenerations) {
  SenseBarrier b(2);
  SenseBarrier::LocalSense s0, s1;
  std::atomic<int> stage{0};
  std::atomic<int> releases{0};
  std::thread t([&] {
    for (int i = 0; i < 1000; ++i) {
      if (b.arrive_and_wait(s1)) releases.fetch_add(1);
    }
    stage.store(1);
  });
  for (int i = 0; i < 1000; ++i) {
    if (b.arrive_and_wait(s0)) releases.fetch_add(1);
  }
  t.join();
  EXPECT_EQ(stage.load(), 1);
  EXPECT_EQ(releases.load(), 2000);  // never poisoned: every release is normal
}

}  // namespace
