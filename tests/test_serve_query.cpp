// End-to-end query ops through ServiceCore: pathmax/conn/cut/topk answers
// against brute force on snapshots, input validation, version stamping,
// index metrics, and the health verb's per-session index block.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/types.hpp"
#include "serve/service_core.hpp"

namespace {

using namespace smp;
using namespace smp::graph;
using namespace smp::serve;

Request make(Op op, std::string session = {}) {
  Request r;
  r.op = op;
  r.session = std::move(session);
  return r;
}

/// Opens session `name` holding `g` (bulk insert through the service).
void open_with(ServiceCore& svc, const std::string& name, const EdgeList& g) {
  Request open = make(Op::kOpen, name);
  open.num_vertices = g.num_vertices;
  ASSERT_EQ(svc.call(open).status, Status::kOk);
  Request ins = make(Op::kInsert, name);
  ins.insertions = g.edges;
  ASSERT_EQ(svc.call(ins).status, Status::kOk);
}

struct UnionFind {
  std::vector<VertexId> p;
  explicit UnionFind(VertexId n) : p(n) {
    for (VertexId i = 0; i < n; ++i) p[i] = i;
  }
  VertexId find(VertexId x) {
    while (p[x] != x) x = p[x] = p[p[x]];
    return x;
  }
  void unite(VertexId a, VertexId b) { p[find(a)] = find(b); }
};

/// Brute-force bottleneck on the *snapshot* forest: BFS over its edges.
struct Naive {
  bool connected = false;
  EdgeId edge_id = kInvalidEdge;
  Weight weight = 0;
};

Naive naive_path_max(const SnapshotData& snap, VertexId n, VertexId u,
                     VertexId v) {
  std::vector<std::vector<std::pair<VertexId, EdgeId>>> adj(n);
  for (const EdgeId id : snap.forest_ids) {
    // forest_ids index the live graph via live_ids.
    const auto it =
        std::lower_bound(snap.live_ids.begin(), snap.live_ids.end(), id);
    const auto pos = static_cast<std::size_t>(it - snap.live_ids.begin());
    const WEdge& e = snap.live.edges[pos];
    adj[e.u].push_back({e.v, id});
    adj[e.v].push_back({e.u, id});
  }
  std::vector<VertexId> from(n, kInvalidVertex);
  std::vector<EdgeId> via(n, kInvalidEdge);
  std::vector<Weight> via_w(n, 0);
  std::queue<VertexId> q;
  q.push(u);
  from[u] = u;
  while (!q.empty()) {
    const VertexId x = q.front();
    q.pop();
    for (const auto& [y, id] : adj[x]) {
      if (from[y] != kInvalidVertex) continue;
      from[y] = x;
      via[y] = id;
      const auto it =
          std::lower_bound(snap.live_ids.begin(), snap.live_ids.end(), id);
      via_w[y] = snap.live.edges[static_cast<std::size_t>(
                                     it - snap.live_ids.begin())]
                     .w;
      q.push(y);
    }
  }
  Naive r;
  if (from[v] == kInvalidVertex) return r;
  r.connected = true;
  bool has = false;
  for (VertexId x = v; x != u; x = from[x]) {
    if (!has || via_w[x] > r.weight ||
        (via_w[x] == r.weight && via[x] > r.edge_id)) {
      r.weight = via_w[x];
      r.edge_id = via[x];
      has = true;
    }
  }
  return r;
}

TEST(ServeQuery, PathMaxConnAgainstSnapshotBruteForce) {
  ServiceCore svc;
  const VertexId n = 150;
  const EdgeList g = random_graph(n, 400, 5);
  open_with(svc, "g", g);

  const Response snap_r = svc.call(make(Op::kSnapshot, "g"));
  ASSERT_EQ(snap_r.status, Status::kOk);
  const SnapshotData& snap = *snap_r.snapshot;

  UnionFind uf(n);
  for (const WEdge& e : g.edges) uf.unite(e.u, e.v);

  for (VertexId u = 0; u < n; u += 7) {
    for (VertexId v = 1; v < n; v += 11) {
      if (u == v) continue;
      Request pq = make(Op::kConn, "g");
      pq.u = u;
      pq.v = v;
      const Response cr = svc.call(pq);
      ASSERT_EQ(cr.status, Status::kOk);
      EXPECT_EQ(cr.connected, uf.find(u) == uf.find(v));
      EXPECT_EQ(cr.index_version, snap.version);

      pq.op = Op::kPathMax;
      const Response pr = svc.call(pq);
      ASSERT_EQ(pr.status, Status::kOk);
      const Naive ref = naive_path_max(snap, n, u, v);
      ASSERT_EQ(pr.pathmax_found, ref.connected) << "u=" << u << " v=" << v;
      if (ref.connected) {
        EXPECT_EQ(pr.pathmax_id, ref.edge_id);
        EXPECT_EQ(pr.pathmax_w, ref.weight);
      }
    }
  }
  // The fast path must have served at least part of this read-only burst.
  EXPECT_GT(svc.metrics().index_hits.load(), 0u);
}

TEST(ServeQuery, QueriesTrackWrites) {
  ServiceCore svc;
  EdgeList g(6);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 5.0);
  open_with(svc, "g", g);

  Request pq = make(Op::kPathMax, "g");
  pq.u = 0;
  pq.v = 2;
  Response r = svc.call(pq);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_TRUE(r.pathmax_found);
  EXPECT_EQ(r.pathmax_w, 5.0);
  const std::uint64_t v0 = r.index_version;

  // A lighter parallel path 1-3-2 displaces the weight-5 edge.
  Request ins = make(Op::kInsert, "g");
  ins.insertions = {{1, 3, 1.0}, {3, 2, 2.0}};
  ASSERT_EQ(svc.call(ins).status, Status::kOk);

  r = svc.call(pq);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_TRUE(r.pathmax_found);
  EXPECT_EQ(r.pathmax_w, 2.0);
  EXPECT_GT(r.index_version, v0);

  // Deleting the bridge disconnects the pair.
  Request del = make(Op::kDelete, "g");
  del.deletions = {{0, 1}};
  ASSERT_EQ(svc.call(del).status, Status::kOk);
  r = svc.call(pq);
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_FALSE(r.pathmax_found);

  Request cq = make(Op::kConn, "g");
  cq.u = 0;
  cq.v = 2;
  const Response cr = svc.call(cq);
  ASSERT_EQ(cr.status, Status::kOk);
  EXPECT_FALSE(cr.connected);
}

TEST(ServeQuery, CutAndTopk) {
  ServiceCore svc;
  EdgeList g(7);
  g.add_edge(0, 1, 0.1);
  g.add_edge(1, 2, 0.2);
  g.add_edge(2, 3, 0.8);
  g.add_edge(4, 5, 0.15);
  g.add_edge(5, 6, 0.9);
  g.add_edge(0, 3, 0.95);  // non-tree once 2-3 is in
  open_with(svc, "g", g);

  Request cut = make(Op::kCut, "g");
  cut.lambda = 0.5;
  cut.has_lambda = true;
  Response r = svc.call(cut);
  ASSERT_EQ(r.status, Status::kOk);
  // Edges <= 0.5: {0,1,2} merge, {4,5} merge; clusters {0,1,2}, {3}, {4,5},
  // {6}.
  EXPECT_EQ(r.clusters, 4u);
  EXPECT_NE(r.cut_digest, 0u);

  Request topk = make(Op::kTopK, "g");
  topk.limit = 3;
  r = svc.call(topk);
  ASSERT_EQ(r.status, Status::kOk);
  ASSERT_EQ(r.edges.size(), 3u);
  ASSERT_EQ(r.edge_ids.size(), 3u);
  EXPECT_EQ(r.edges[0].w, 0.1);
  EXPECT_EQ(r.edges[1].w, 0.15);
  EXPECT_EQ(r.edges[2].w, 0.2);
  EXPECT_EQ(r.edge_ids[0], 0u);

  // Restricted to cluster-crossing edges at lambda=0.5: candidates are the
  // three heavy edges.
  topk.limit = 10;
  topk.lambda = 0.5;
  topk.has_lambda = true;
  r = svc.call(topk);
  ASSERT_EQ(r.status, Status::kOk);
  ASSERT_EQ(r.edges.size(), 3u);
  EXPECT_EQ(r.edges[0].w, 0.8);
  EXPECT_EQ(r.edges[1].w, 0.9);
  EXPECT_EQ(r.edges[2].w, 0.95);
}

TEST(ServeQuery, ValidationErrors) {
  ServiceCore svc;
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  open_with(svc, "g", g);

  Request pq = make(Op::kPathMax, "g");
  pq.u = 0;
  pq.v = 99;  // out of range
  EXPECT_EQ(svc.call(pq).status, Status::kInvalidInput);
  pq.v = 0;  // u == v
  EXPECT_EQ(svc.call(pq).status, Status::kInvalidInput);
  pq.op = Op::kConn;
  pq.u = 7;
  pq.v = 1;
  EXPECT_EQ(svc.call(pq).status, Status::kInvalidInput);

  Request topk = make(Op::kTopK, "g");
  topk.limit = 0;
  EXPECT_EQ(svc.call(topk).status, Status::kInvalidInput);

  Request missing = make(Op::kPathMax, "nope");
  missing.u = 0;
  missing.v = 1;
  EXPECT_EQ(svc.call(missing).status, Status::kNotFound);
}

TEST(ServeQuery, HealthReportsIndexState) {
  ServiceCore svc;
  EdgeList g(5);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 2.0);
  open_with(svc, "g", g);

  // Before any query: session named, no index yet.
  Response h = svc.call(make(Op::kHealth, "g"));
  ASSERT_EQ(h.status, Status::kOk);
  EXPECT_TRUE(h.index_status);
  EXPECT_FALSE(h.index_present);

  Request cq = make(Op::kConn, "g");
  cq.u = 0;
  cq.v = 2;
  ASSERT_EQ(svc.call(cq).status, Status::kOk);

  h = svc.call(make(Op::kHealth, "g"));
  ASSERT_EQ(h.status, Status::kOk);
  EXPECT_TRUE(h.index_status);
  EXPECT_TRUE(h.index_present);
  EXPECT_TRUE(h.index_fresh);
  EXPECT_EQ(h.index_vertices, 5u);
  EXPECT_EQ(h.index_edges, 2u);
  EXPECT_GE(h.index_rebuilds, 1u);
  EXPECT_GE(h.index_age_s, 0.0);

  // Unnamed health: no index block.
  h = svc.call(make(Op::kHealth));
  ASSERT_EQ(h.status, Status::kOk);
  EXPECT_FALSE(h.index_status);

  // A write staleness-bumps the version; eager rebuild catches it back up.
  Request ins = make(Op::kInsert, "g");
  ins.insertions = {{3, 4, 0.5}};
  ASSERT_EQ(svc.call(ins).status, Status::kOk);
  ASSERT_EQ(svc.call(cq).status, Status::kOk);
  h = svc.call(make(Op::kHealth, "g"));
  EXPECT_TRUE(h.index_present);
  EXPECT_TRUE(h.index_fresh);
  EXPECT_EQ(h.index_edges, 3u);
}

TEST(ServeQuery, StatsExposeQueryIndexSection) {
  ServiceCore svc;
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  open_with(svc, "g", g);
  Request cq = make(Op::kConn, "g");
  cq.u = 0;
  cq.v = 1;
  ASSERT_EQ(svc.call(cq).status, Status::kOk);
  ASSERT_EQ(svc.call(cq).status, Status::kOk);
  const Response st = svc.call(make(Op::kStats));
  ASSERT_EQ(st.status, Status::kOk);
  EXPECT_NE(st.stats_json.find("\"query_index\""), std::string::npos);
  EXPECT_NE(st.stats_json.find("\"rebuilds\""), std::string::npos);
  EXPECT_NE(st.stats_json.find("\"conn\""), std::string::npos);
}

}  // namespace
