// R-MAT generator (extension family) and binary graph I/O.
#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>
#include <vector>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/stats.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(Rmat, ExactEdgeCountSimpleSeeded) {
  const EdgeList g = rmat_graph(12, 20000, 5);
  EXPECT_EQ(g.num_vertices, 4096u);
  EXPECT_EQ(g.num_edges(), 20000u);
  EXPECT_TRUE(is_simple(g));
  const EdgeList g2 = rmat_graph(12, 20000, 5);
  EXPECT_EQ(g.edges, g2.edges);
  const EdgeList g3 = rmat_graph(12, 20000, 6);
  EXPECT_NE(g.edges, g3.edges);
}

TEST(Rmat, DegreeDistributionIsSkewed) {
  // The whole point of R-MAT: a heavy-tailed degree distribution.  The max
  // degree should far exceed the mean; a uniform random graph of the same
  // size stays near the mean.
  const EdgeList r = rmat_graph(13, 40000, 7);
  const EdgeList u = random_graph(8192, 40000, 7);
  const auto dr = degree_stats(r);
  const auto du = degree_stats(u);
  EXPECT_GT(dr.max_degree, 8 * static_cast<std::size_t>(dr.mean_degree));
  EXPECT_LT(du.max_degree, 4 * static_cast<std::size_t>(du.mean_degree));
  EXPECT_GT(dr.max_degree, 3 * du.max_degree);
}

TEST(Rmat, RejectsBadParameters) {
  EXPECT_THROW(rmat_graph(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(rmat_graph(31, 10, 1), std::invalid_argument);
  EXPECT_THROW(rmat_graph(10, 10, 0.5, 0.3, 0.3, 1), std::invalid_argument);
  EXPECT_THROW(rmat_graph(4, 100, 1), std::invalid_argument);  // m too large
}

TEST(Rmat, AllMsfAlgorithmsAgreeOnSkewedInput) {
  // Skewed degrees stress the load-balancing paths (one supervertex hoards
  // most of the adjacency mass early).
  const EdgeList g = rmat_graph(12, 30000, 9);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  for (const auto alg : core::kParallelAlgorithms) {
    EXPECT_EQ(test::sorted_ids(test::run_alg(g, alg, 4)), ref)
        << core::to_string(alg);
  }
}

TEST(BinaryIO, RoundTripExact) {
  const EdgeList g = rmat_graph(10, 5000, 11);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(ss, g);
  const EdgeList h = read_binary(ss);
  EXPECT_EQ(h.num_vertices, g.num_vertices);
  ASSERT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.edges, g.edges) << "binary round-trip must be bit-exact";
}

TEST(BinaryIO, DetectsCorruption) {
  {
    std::stringstream ss;
    ss << "NOPE....";
    EXPECT_THROW(read_binary(ss), std::runtime_error);
  }
  {
    const EdgeList g = random_graph(100, 300, 1);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    write_binary(ss, g);
    std::string data = ss.str();
    data.resize(data.size() / 2);  // truncate
    std::stringstream half(data, std::ios::in | std::ios::binary);
    EXPECT_THROW(read_binary(half), std::runtime_error);
  }
}

TEST(BinaryIO, FileRoundTripAndSizeAdvantage) {
  const EdgeList g = random_graph(2000, 10000, 13);
  const std::string dir = ::testing::TempDir();
  write_binary_file(dir + "/g.smpg", g);
  write_dimacs_file(dir + "/g.gr", g);
  const EdgeList h = read_binary_file(dir + "/g.smpg");
  EXPECT_EQ(h.edges, g.edges);
  // The binary file must be smaller (16 B/edge vs ~30 B of decimal text).
  std::ifstream b(dir + "/g.smpg", std::ios::ate | std::ios::binary);
  std::ifstream t(dir + "/g.gr", std::ios::ate);
  EXPECT_LT(b.tellg(), t.tellg());
}

TEST(BinaryIO, EmptyGraph) {
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_binary(ss, EdgeList(7));
  const EdgeList h = read_binary(ss);
  EXPECT_EQ(h.num_vertices, 7u);
  EXPECT_EQ(h.num_edges(), 0u);
}

}  // namespace
