// Bor-UF (lock-free union-find Borůvka, the GBBS/Galois-style successor) and
// the AtomicUnionFind it rides on.
#include <gtest/gtest.h>

#include <atomic>

#include "core/bor_uf.hpp"
#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "pprim/atomic_union_find.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/rng.hpp"
#include "seq/seq_msf.hpp"
#include "seq/union_find.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(AtomicUnionFind, SequentialSemanticsMatchPlainUnionFind) {
  AtomicUnionFind a(100);
  seq::UnionFind b(100);
  Rng rng(3);
  for (int op = 0; op < 2000; ++op) {
    const auto x = static_cast<std::uint32_t>(rng.next_below(100));
    const auto y = static_cast<std::uint32_t>(rng.next_below(100));
    EXPECT_EQ(a.unite(x, y), b.unite(x, y)) << op;
    EXPECT_EQ(a.connected(x, y), b.connected(x, y));
  }
  EXPECT_EQ(a.num_sets(), b.num_sets());
}

TEST(AtomicUnionFind, ConcurrentUnionsOfAForestAllSucceedExactlyOnce) {
  // Chain unions executed concurrently: every unite targets a distinct edge
  // of a path, so each must report success exactly once.
  const std::uint32_t n = 100000;
  for (const int threads : {2, 4, 8}) {
    AtomicUnionFind uf(n);
    ThreadTeam team(threads);
    std::atomic<std::size_t> successes{0};
    parallel_for(team, n - 1, [&](std::size_t i) {
      if (uf.unite(static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 1))) {
        successes.fetch_add(1, std::memory_order_relaxed);
      }
    });
    EXPECT_EQ(successes.load(), n - 1) << threads;
    EXPECT_EQ(uf.num_sets(), 1u) << threads;
  }
}

TEST(AtomicUnionFind, ConcurrentRacesOnSameUnionPickOneWinner) {
  // All threads hammer the same pair: exactly one success overall.
  for (int round = 0; round < 20; ++round) {
    AtomicUnionFind uf(4);
    ThreadTeam team(8);
    std::atomic<int> wins{0};
    team.run([&](TeamCtx&) {
      if (uf.unite(1, 3)) wins.fetch_add(1);
    });
    EXPECT_EQ(wins.load(), 1) << "round " << round;
    EXPECT_TRUE(uf.connected(1, 3));
    EXPECT_EQ(uf.num_sets(), 3u);
  }
}

class BorUfThreads : public ::testing::TestWithParam<int> {};

TEST_P(BorUfThreads, MatchesKruskalOnZoo) {
  const int threads = GetParam();
  const EdgeList graphs[] = {
      random_graph(3000, 12000, 1), random_graph(3000, 1500, 2),
      mesh2d(45, 45, 3),            geometric_knn(2000, 6, 4),
      structured_graph(0, 2048, 5), structured_graph(2, 2000, 6),
      rmat_graph(12, 30000, 7),
  };
  for (const auto& g : graphs) {
    const auto ref = seq::kruskal_msf(g);
    const auto got = core::bor_uf_msf(g, threads);
    ASSERT_EQ(test::sorted_ids(got), test::sorted_ids(ref)) << threads;
    EXPECT_EQ(got.num_trees, ref.num_trees);
    const auto chk = validate_spanning_forest(g, got.edges);
    EXPECT_TRUE(chk.ok) << chk.error;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BorUfThreads, ::testing::Values(1, 2, 4, 8));

TEST(BorUf, RepeatedRunsStableUnderRaces) {
  const EdgeList g = random_graph(5000, 25000, 9);
  const auto ref = test::sorted_ids(seq::kruskal_msf(g));
  for (int rep = 0; rep < 10; ++rep) {
    ASSERT_EQ(test::sorted_ids(core::bor_uf_msf(g, 8)), ref) << rep;
  }
}

TEST(BorUf, TrivialInputs) {
  EXPECT_TRUE(core::bor_uf_msf(EdgeList(0), 2).edges.empty());
  EXPECT_TRUE(core::bor_uf_msf(EdgeList(9), 2).edges.empty());
  EdgeList g(2);
  g.add_edge(0, 1, 1.5);
  EXPECT_DOUBLE_EQ(core::bor_uf_msf(g, 2).total_weight, 1.5);
}

}  // namespace
