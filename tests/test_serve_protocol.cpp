// Wire protocol of the serving layer: request-line grammar (1-based DIMACS
// vertices), option handling, response rendering (including the multi-line
// payload blocks).
#include <gtest/gtest.h>

#include <string>

#include "core/error.hpp"
#include "serve/protocol.hpp"

namespace {

using namespace smp;
using namespace smp::serve;

TEST(ServeProtocol, ParsesControlVerbs) {
  EXPECT_TRUE(parse_line("quit").quit);
  EXPECT_TRUE(parse_line("shutdown").shutdown);
  EXPECT_EQ(parse_line("ping").req.op, Op::kPing);
  EXPECT_EQ(parse_line("list").req.op, Op::kList);
  EXPECT_EQ(parse_line("stats").req.op, Op::kStats);
  EXPECT_EQ(parse_line("  ping  ").req.op, Op::kPing);  // whitespace-tolerant
}

TEST(ServeProtocol, ParsesOpenVariants) {
  const WireRequest a = parse_line("open g n=100");
  EXPECT_EQ(a.req.op, Op::kOpen);
  EXPECT_EQ(a.req.session, "g");
  EXPECT_EQ(a.req.num_vertices, 100u);
  EXPECT_TRUE(a.req.path.empty());

  const WireRequest b = parse_line("open mesh file=/tmp/x.smpg");
  EXPECT_EQ(b.req.path, "/tmp/x.smpg");
  EXPECT_EQ(b.req.num_vertices, 0u);

  EXPECT_THROW(parse_line("open g"), Error);                 // neither
  EXPECT_THROW(parse_line("open g n=5 file=/tmp/x"), Error); // both
  EXPECT_THROW(parse_line("open g n=0"), Error);
}

TEST(ServeProtocol, ParsesVerticesOneBased) {
  const WireRequest c = parse_line("connected g 1 10");
  EXPECT_EQ(c.req.op, Op::kConnected);
  EXPECT_EQ(c.req.u, 0u);
  EXPECT_EQ(c.req.v, 9u);
  EXPECT_THROW(parse_line("connected g 0 1"), Error);  // 0 is not a vertex

  const WireRequest i = parse_line("insert g 1 2 1.5 3 4 -2.5");
  ASSERT_EQ(i.req.insertions.size(), 2u);
  EXPECT_EQ(i.req.insertions[0].u, 0u);
  EXPECT_EQ(i.req.insertions[0].v, 1u);
  EXPECT_DOUBLE_EQ(i.req.insertions[0].w, 1.5);
  EXPECT_DOUBLE_EQ(i.req.insertions[1].w, -2.5);
  EXPECT_THROW(parse_line("insert g 1 2"), Error);      // weight missing
  EXPECT_THROW(parse_line("insert g 1 2 1.0 3"), Error);

  const WireRequest d = parse_line("delete g 5 6 7 8");
  ASSERT_EQ(d.req.deletions.size(), 2u);
  EXPECT_EQ(d.req.deletions[0].first, 4u);
  EXPECT_EQ(d.req.deletions[1].second, 7u);
  EXPECT_THROW(parse_line("delete g 5"), Error);
}

TEST(ServeProtocol, ParsesDeadlineAndMaxOptions) {
  const WireRequest w = parse_line("weight g deadline=250");
  EXPECT_EQ(w.req.op, Op::kWeight);
  EXPECT_DOUBLE_EQ(w.req.deadline_s, 0.25);
  EXPECT_THROW(parse_line("weight g deadline=0"), Error);
  EXPECT_THROW(parse_line("weight g deadline=-1"), Error);

  const WireRequest e = parse_line("edges g max=5 deadline=100");
  EXPECT_EQ(e.req.limit, 5u);
  EXPECT_DOUBLE_EQ(e.req.deadline_s, 0.1);
  EXPECT_EQ(parse_line("edges g").req.limit, 0u);  // 0 = everything
}

TEST(ServeProtocol, RejectsGarbage) {
  EXPECT_THROW(parse_line(""), Error);
  EXPECT_THROW(parse_line("   "), Error);
  EXPECT_THROW(parse_line("frobnicate g"), Error);
  EXPECT_THROW(parse_line("weight"), Error);
  EXPECT_THROW(parse_line("connected g 1 notanumber"), Error);
  EXPECT_THROW(parse_line("insert g 1 2 nan-ish"), Error);
}

TEST(ServeProtocol, RendersHeaders) {
  Response ok;
  ok.weight = 4.5;
  ok.trees = 7;
  ok.forest_edges = 3;
  ok.live_edges = 3;
  EXPECT_EQ(render_response(Op::kWeight, ok),
            "ok weight=4.5 trees=7 forest=3 live=3\n");

  ok.coalesced = 4;
  ok.applied = true;
  EXPECT_EQ(render_response(Op::kInsert, ok),
            "ok applied=1 coalesced=4 weight=4.5 trees=7 forest=3 live=3\n");

  Response conn;
  conn.connected = true;
  EXPECT_EQ(render_response(Op::kConnected, conn), "ok connected=1\n");

  Response err;
  err.status = Status::kDeadlineExceeded;
  err.detail = "too slow";
  EXPECT_EQ(render_response(Op::kWeight, err),
            "err deadline_exceeded too slow\n");
  // A write that failed mid-solve reports that its mutation is in.
  err.applied = true;
  EXPECT_EQ(render_response(Op::kInsert, err),
            "err deadline_exceeded applied=1 too slow\n");
}

TEST(ServeProtocol, RendersPayloadBlocks) {
  Response edges;
  edges.edges.push_back(graph::WEdge{0, 1, 1.5});
  edges.edges_total = 2;
  EXPECT_EQ(render_response(Op::kForestEdges, edges),
            "ok count=1 total=2\ne 1 2 1.5\n.\n");

  Response stats;
  stats.stats_json = "{\"x\": 1}";
  EXPECT_EQ(render_response(Op::kStats, stats), "ok\n{\"x\": 1}\n.\n");

  Response list;
  list.sessions = {"a", "b"};
  EXPECT_EQ(render_response(Op::kList, list), "ok count=2 sessions=a,b\n");
}

TEST(ServeProtocol, ParsesQueryVerbs) {
  const WireRequest pm = parse_line("pathmax g 3 9");
  EXPECT_EQ(pm.req.op, Op::kPathMax);
  EXPECT_EQ(pm.req.session, "g");
  EXPECT_EQ(pm.req.u, 2u);
  EXPECT_EQ(pm.req.v, 8u);
  EXPECT_THROW(parse_line("pathmax g 1"), Error);
  EXPECT_THROW(parse_line("pathmax g 0 2"), Error);  // 1-based

  const WireRequest cn = parse_line("conn g 1 2");
  EXPECT_EQ(cn.req.op, Op::kConn);
  EXPECT_EQ(cn.req.u, 0u);
  EXPECT_EQ(cn.req.v, 1u);

  const WireRequest ct = parse_line("cut g 0.75");
  EXPECT_EQ(ct.req.op, Op::kCut);
  EXPECT_DOUBLE_EQ(ct.req.lambda, 0.75);
  EXPECT_TRUE(ct.req.has_lambda);
  EXPECT_THROW(parse_line("cut g"), Error);
  EXPECT_THROW(parse_line("cut g nan"), Error);

  const WireRequest tk = parse_line("topk g 25");
  EXPECT_EQ(tk.req.op, Op::kTopK);
  EXPECT_EQ(tk.req.limit, 25u);
  EXPECT_FALSE(tk.req.has_lambda);
  const WireRequest tkl = parse_line("topk g 5 lambda=0.5");
  EXPECT_EQ(tkl.req.limit, 5u);
  EXPECT_TRUE(tkl.req.has_lambda);
  EXPECT_DOUBLE_EQ(tkl.req.lambda, 0.5);
  EXPECT_THROW(parse_line("topk g 0"), Error);
  EXPECT_THROW(parse_line("topk g"), Error);
}

TEST(ServeProtocol, RendersQueryResponses) {
  Response conn;
  conn.connected = true;
  conn.index_version = 3;
  EXPECT_EQ(render_response(Op::kConn, conn), "ok connected=1\n");

  Response pm;
  pm.pathmax_found = true;
  pm.pathmax_id = 17;
  pm.pathmax_u = 0;
  pm.pathmax_v = 4;
  pm.pathmax_w = 2.5;
  EXPECT_EQ(render_response(Op::kPathMax, pm),
            "ok connected=1 id=17 u=1 v=5 weight=2.5\n");
  Response disc;
  EXPECT_EQ(render_response(Op::kPathMax, disc), "ok connected=0\n");

  Response cut;
  cut.clusters = 4;
  cut.cut_digest = 0xdeadbeefull;
  EXPECT_EQ(render_response(Op::kCut, cut),
            "ok clusters=4 digest=00000000deadbeef\n");

  Response topk;
  topk.edges.push_back(graph::WEdge{0, 1, 1.5});
  topk.edges.push_back(graph::WEdge{2, 3, 2.0});
  topk.edge_ids = {7, 9};
  EXPECT_EQ(render_response(Op::kTopK, topk),
            "ok count=2\ne 1 2 1.5 id=7\ne 3 4 2 id=9\n.\n");
}

}  // namespace
