// The central property suite: every parallel algorithm × every generator
// family × several sizes/seeds × several thread counts must reproduce
// Kruskal's forest exactly (same input-edge-id set).
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graph/generators.hpp"
#include "graph/validate.hpp"
#include "seq/seq_msf.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

enum class Family {
  kRandomSparse,
  kRandomDense,
  kUltraSparse,
  kMesh2D,
  kMesh2D60,
  kMesh3D40,
  kGeometric,
  kStr0,
  kStr1,
  kStr2,
  kStr3,
};

const char* family_name(Family f) {
  switch (f) {
    case Family::kRandomSparse: return "random-sparse";
    case Family::kRandomDense: return "random-dense";
    case Family::kUltraSparse: return "ultra-sparse";
    case Family::kMesh2D: return "mesh2d";
    case Family::kMesh2D60: return "mesh2d60";
    case Family::kMesh3D40: return "mesh3d40";
    case Family::kGeometric: return "geometric";
    case Family::kStr0: return "str0";
    case Family::kStr1: return "str1";
    case Family::kStr2: return "str2";
    case Family::kStr3: return "str3";
  }
  return "?";
}

EdgeList make_family(Family f, std::uint64_t seed) {
  switch (f) {
    case Family::kRandomSparse: return random_graph(2000, 6000, seed);
    case Family::kRandomDense: return random_graph(500, 20000, seed);
    case Family::kUltraSparse: return random_graph(3000, 1500, seed);  // disconnected
    case Family::kMesh2D: return mesh2d(45, 45, seed);
    case Family::kMesh2D60: return mesh2d_p(45, 45, 0.6, seed);
    case Family::kMesh3D40: return mesh3d_p(13, 13, 13, 0.4, seed);
    case Family::kGeometric: return geometric_knn(2000, 6, seed);
    case Family::kStr0: return structured_graph(0, 2048, seed);
    case Family::kStr1: return structured_graph(1, 2000, seed);
    case Family::kStr2: return structured_graph(2, 2000, seed);
    case Family::kStr3: return structured_graph(3, 2000, seed);
  }
  return EdgeList(0);
}

using Param = std::tuple<core::Algorithm, Family, int /*threads*/>;

// Readable test names (kept out of the macro: commas in structured bindings
// confuse preprocessor argument splitting).
std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  std::string name(core::to_string(std::get<0>(info.param)));
  name += "_";
  name += family_name(std::get<1>(info.param));
  name += "_t" + std::to_string(std::get<2>(info.param));
  for (auto& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

class VariantAgreement : public ::testing::TestWithParam<Param> {};

TEST_P(VariantAgreement, MatchesKruskalExactly) {
  const auto [alg, family, threads] = GetParam();
  for (const std::uint64_t seed : {11ull, 12ull}) {
    const EdgeList g = make_family(family, seed);
    const auto ref = seq::kruskal_msf(g);
    const auto got = test::run_alg(g, alg, threads);
    ASSERT_EQ(test::sorted_ids(got), test::sorted_ids(ref))
        << core::to_string(alg) << " on " << family_name(family)
        << " threads=" << threads << " seed=" << seed;
    EXPECT_WEIGHT_EQ(got.total_weight, ref.total_weight);
    EXPECT_EQ(got.num_trees, ref.num_trees);
    const auto chk = validate_spanning_forest(g, got.edges);
    EXPECT_TRUE(chk.ok) << chk.error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, VariantAgreement,
    ::testing::Combine(
        ::testing::Values(core::Algorithm::kBorEL, core::Algorithm::kBorAL,
                          core::Algorithm::kBorALM, core::Algorithm::kBorFAL,
                          core::Algorithm::kMstBC, core::Algorithm::kParKruskal,
                          core::Algorithm::kFilterKruskal,
                          core::Algorithm::kSampleFilter,
                          core::Algorithm::kBorUF,
                          core::Algorithm::kChampion),
        ::testing::Values(Family::kRandomSparse, Family::kRandomDense,
                          Family::kUltraSparse, Family::kMesh2D,
                          Family::kMesh2D60, Family::kMesh3D40,
                          Family::kGeometric, Family::kStr0, Family::kStr1,
                          Family::kStr2, Family::kStr3),
        ::testing::Values(1, 3, 8)),
    param_name);

// Determinism: repeated runs with the same options give the same forest,
// regardless of scheduling (the *set* of edges is unique by construction;
// this catches nondeterministic corruption rather than nondeterministic
// choice).
TEST(VariantDeterminism, RepeatedRunsIdentical) {
  const EdgeList g = random_graph(3000, 12000, 99);
  for (const auto alg : core::kParallelAlgorithms) {
    const auto first = test::sorted_ids(test::run_alg(g, alg, 4));
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(test::sorted_ids(test::run_alg(g, alg, 4)), first)
          << core::to_string(alg) << " rep " << rep;
    }
  }
  for (const auto alg : core::kExtensionAlgorithms) {
    const auto first = test::sorted_ids(test::run_alg(g, alg, 4));
    for (int rep = 0; rep < 3; ++rep) {
      EXPECT_EQ(test::sorted_ids(test::run_alg(g, alg, 4)), first)
          << core::to_string(alg) << " rep " << rep;
    }
  }
}

}  // namespace
