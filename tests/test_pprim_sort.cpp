// Sequential hybrid sorts (insertion + bottom-up merge) and parallel sample
// sort, checked against std::sort across sizes, thread counts and key
// distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "pprim/rng.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/seq_sort.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

enum class Dist {
  kUniform,
  kFewDistinct,
  kSortedAlready,
  kReversed,
  kAllEqual,
  kNinetyPctDup
};

std::vector<std::uint64_t> make_input(std::size_t n, Dist d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  switch (d) {
    case Dist::kUniform:
      for (auto& x : v) x = rng.next();
      break;
    case Dist::kFewDistinct:
      for (auto& x : v) x = rng.next_below(7);
      break;
    case Dist::kSortedAlready:
      for (std::size_t i = 0; i < n; ++i) v[i] = i;
      break;
    case Dist::kReversed:
      for (std::size_t i = 0; i < n; ++i) v[i] = n - i;
      break;
    case Dist::kAllEqual:
      for (auto& x : v) x = 42;
      break;
    case Dist::kNinetyPctDup:
      // 90% of elements share one value; the rest are uniform.  Degenerate
      // splitter distributions like this are the classic sample-sort trap:
      // most splitters collapse onto the duplicated value and one bucket
      // receives nearly the whole input.
      for (auto& x : v) x = rng.next_below(10) == 0 ? rng.next() : 7;
      break;
  }
  return v;
}

TEST(InsertionSort, SortsSmallInputs) {
  for (const std::size_t n : {0u, 1u, 2u, 3u, 17u, 100u}) {
    auto v = make_input(n, Dist::kUniform, n + 1);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    insertion_sort(std::span<std::uint64_t>(v), std::less<>{});
    EXPECT_EQ(v, expect) << n;
  }
}

class MergeSortTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Dist>> {};

TEST_P(MergeSortTest, MatchesStdSort) {
  const auto [n, dist] = GetParam();
  auto v = make_input(n, dist, n * 7 + 3);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  std::vector<std::uint64_t> scratch(n);
  merge_sort_bottomup(std::span<std::uint64_t>(v), std::span<std::uint64_t>(scratch),
                      std::less<>{});
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDists, MergeSortTest,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{31}, std::size_t{32},
                                         std::size_t{33}, std::size_t{1000},
                                         std::size_t{65536}),
                       ::testing::Values(Dist::kUniform, Dist::kFewDistinct,
                                         Dist::kSortedAlready, Dist::kReversed,
                                         Dist::kAllEqual)));

TEST(SeqSortHybrid, DispatchesOnCutoff) {
  // Below the cutoff no scratch is required; above it is.
  auto small = make_input(kInsertionSortCutoff, Dist::kUniform, 9);
  auto expect_small = small;
  std::sort(expect_small.begin(), expect_small.end());
  seq_sort(std::span<std::uint64_t>(small), {}, std::less<>{});
  EXPECT_EQ(small, expect_small);

  auto big = make_input(kInsertionSortCutoff + 1, Dist::kUniform, 10);
  auto expect_big = big;
  std::sort(expect_big.begin(), expect_big.end());
  std::vector<std::uint64_t> scratch(big.size());
  seq_sort(std::span<std::uint64_t>(big), std::span<std::uint64_t>(scratch),
           std::less<>{});
  EXPECT_EQ(big, expect_big);
}

class SampleSortTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, Dist>> {};

TEST_P(SampleSortTest, MatchesStdSort) {
  const auto [threads, n, dist] = GetParam();
  ThreadTeam team(threads);
  auto v = make_input(n, dist, n + static_cast<std::size_t>(threads));
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  sample_sort(team, v, std::less<>{});
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsSizesDists, SampleSortTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(std::size_t{0}, std::size_t{100},
                                         std::size_t{1} << 15,
                                         (std::size_t{1} << 16) + 17),
                       ::testing::Values(Dist::kUniform, Dist::kFewDistinct,
                                         Dist::kSortedAlready, Dist::kReversed,
                                         Dist::kAllEqual,
                                         Dist::kNinetyPctDup)));

// Adversarial distributions against the in-region primitive: the sort runs
// inside one persistent SPMD region (as the fused Borůvka iterations call
// it), with scratch reused across repeated sorts of different shapes.  The
// input size sits above the sample-sort cutoff so the full splitter-based
// parallel path runs at every p.
class SampleSortAdversarialTest
    : public ::testing::TestWithParam<std::tuple<int, Dist>> {};

TEST_P(SampleSortAdversarialTest, InRegionMatchesStdSort) {
  const auto [threads, dist] = GetParam();
  constexpr std::size_t kN = 40000;  // > kDefaultSampleSortCutoff (1 << 15)
  ThreadTeam team(threads);
  SampleSortScratch<std::uint64_t> scratch;
  for (int rep = 0; rep < 2; ++rep) {  // second rep reuses grown scratch
    auto v = make_input(kN, dist, static_cast<std::size_t>(threads) * 31 +
                                      static_cast<std::size_t>(rep));
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    team.run([&](TeamCtx& ctx) {
      sample_sort_in_region(ctx, v, scratch, std::less<>{});
    });
    ASSERT_EQ(v, expect);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsDists, SampleSortAdversarialTest,
    ::testing::Combine(::testing::Values(2, 4, 8),
                       ::testing::Values(Dist::kAllEqual, Dist::kSortedAlready,
                                         Dist::kReversed,
                                         Dist::kNinetyPctDup)));

TEST(SampleSort, NinetyPctDupStableRecords) {
  // Stability under heavy duplication: records sharing the hot key must keep
  // their input order through the parallel path.
  struct Rec {
    std::uint64_t key;
    std::uint32_t seq;
  };
  ThreadTeam team(4);
  auto keys = make_input(50000, Dist::kNinetyPctDup, 99);
  std::vector<Rec> v(keys.size());
  for (std::uint32_t i = 0; i < v.size(); ++i) v[i] = {keys[i], i};
  const auto less = [](const Rec& a, const Rec& b) {
    return a.key != b.key ? a.key < b.key : a.seq < b.seq;
  };
  auto expect = v;
  std::sort(expect.begin(), expect.end(), less);
  sample_sort(team, v, less);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].key, expect[i].key) << i;
    ASSERT_EQ(v[i].seq, expect[i].seq) << i;
  }
}

TEST(SampleSort, CustomComparatorAndStructs) {
  struct Rec {
    std::uint32_t key;
    std::uint32_t payload;
  };
  ThreadTeam team(4);
  Rng rng(5);
  std::vector<Rec> v(100000);
  for (std::uint32_t i = 0; i < v.size(); ++i) {
    v[i] = {static_cast<std::uint32_t>(rng.next_below(1000)), i};
  }
  const auto less = [](const Rec& a, const Rec& b) {
    return a.key != b.key ? a.key < b.key : a.payload < b.payload;
  };
  auto expect = v;
  std::sort(expect.begin(), expect.end(), less);
  sample_sort(team, v, less);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].key, expect[i].key) << i;
    ASSERT_EQ(v[i].payload, expect[i].payload) << i;
  }
}

}  // namespace
