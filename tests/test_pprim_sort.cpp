// Sequential hybrid sorts (insertion + bottom-up merge) and parallel sample
// sort, checked against std::sort across sizes, thread counts and key
// distributions.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "pprim/rng.hpp"
#include "pprim/sample_sort.hpp"
#include "pprim/seq_sort.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

enum class Dist { kUniform, kFewDistinct, kSortedAlready, kReversed, kAllEqual };

std::vector<std::uint64_t> make_input(std::size_t n, Dist d, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  switch (d) {
    case Dist::kUniform:
      for (auto& x : v) x = rng.next();
      break;
    case Dist::kFewDistinct:
      for (auto& x : v) x = rng.next_below(7);
      break;
    case Dist::kSortedAlready:
      for (std::size_t i = 0; i < n; ++i) v[i] = i;
      break;
    case Dist::kReversed:
      for (std::size_t i = 0; i < n; ++i) v[i] = n - i;
      break;
    case Dist::kAllEqual:
      for (auto& x : v) x = 42;
      break;
  }
  return v;
}

TEST(InsertionSort, SortsSmallInputs) {
  for (const std::size_t n : {0u, 1u, 2u, 3u, 17u, 100u}) {
    auto v = make_input(n, Dist::kUniform, n + 1);
    auto expect = v;
    std::sort(expect.begin(), expect.end());
    insertion_sort(std::span<std::uint64_t>(v), std::less<>{});
    EXPECT_EQ(v, expect) << n;
  }
}

class MergeSortTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, Dist>> {};

TEST_P(MergeSortTest, MatchesStdSort) {
  const auto [n, dist] = GetParam();
  auto v = make_input(n, dist, n * 7 + 3);
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  std::vector<std::uint64_t> scratch(n);
  merge_sort_bottomup(std::span<std::uint64_t>(v), std::span<std::uint64_t>(scratch),
                      std::less<>{});
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndDists, MergeSortTest,
    ::testing::Combine(::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{31}, std::size_t{32},
                                         std::size_t{33}, std::size_t{1000},
                                         std::size_t{65536}),
                       ::testing::Values(Dist::kUniform, Dist::kFewDistinct,
                                         Dist::kSortedAlready, Dist::kReversed,
                                         Dist::kAllEqual)));

TEST(SeqSortHybrid, DispatchesOnCutoff) {
  // Below the cutoff no scratch is required; above it is.
  auto small = make_input(kInsertionSortCutoff, Dist::kUniform, 9);
  auto expect_small = small;
  std::sort(expect_small.begin(), expect_small.end());
  seq_sort(std::span<std::uint64_t>(small), {}, std::less<>{});
  EXPECT_EQ(small, expect_small);

  auto big = make_input(kInsertionSortCutoff + 1, Dist::kUniform, 10);
  auto expect_big = big;
  std::sort(expect_big.begin(), expect_big.end());
  std::vector<std::uint64_t> scratch(big.size());
  seq_sort(std::span<std::uint64_t>(big), std::span<std::uint64_t>(scratch),
           std::less<>{});
  EXPECT_EQ(big, expect_big);
}

class SampleSortTest
    : public ::testing::TestWithParam<std::tuple<int, std::size_t, Dist>> {};

TEST_P(SampleSortTest, MatchesStdSort) {
  const auto [threads, n, dist] = GetParam();
  ThreadTeam team(threads);
  auto v = make_input(n, dist, n + static_cast<std::size_t>(threads));
  auto expect = v;
  std::sort(expect.begin(), expect.end());
  sample_sort(team, v, std::less<>{});
  EXPECT_EQ(v, expect);
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsSizesDists, SampleSortTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(std::size_t{0}, std::size_t{100},
                                         std::size_t{1} << 15,
                                         (std::size_t{1} << 16) + 17),
                       ::testing::Values(Dist::kUniform, Dist::kFewDistinct,
                                         Dist::kSortedAlready,
                                         Dist::kAllEqual)));

TEST(SampleSort, CustomComparatorAndStructs) {
  struct Rec {
    std::uint32_t key;
    std::uint32_t payload;
  };
  ThreadTeam team(4);
  Rng rng(5);
  std::vector<Rec> v(100000);
  for (std::uint32_t i = 0; i < v.size(); ++i) {
    v[i] = {static_cast<std::uint32_t>(rng.next_below(1000)), i};
  }
  const auto less = [](const Rec& a, const Rec& b) {
    return a.key != b.key ? a.key < b.key : a.payload < b.payload;
  };
  auto expect = v;
  std::sort(expect.begin(), expect.end(), less);
  sample_sort(team, v, less);
  for (std::size_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i].key, expect[i].key) << i;
    ASSERT_EQ(v[i].payload, expect[i].payload) << i;
  }
}

}  // namespace
