// Single-linkage dendrogram built from the MSF.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dendrogram.hpp"
#include "core/msf.hpp"
#include "graph/generators.hpp"
#include "seq/seq_msf.hpp"
#include "seq/union_find.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(Dendrogram, HandExampleMergesInWeightOrder) {
  // Path 0 -1.0- 1 -3.0- 2 -2.0- 3: merges at 1.0 (0,1), 2.0 (2,3),
  // 3.0 (both pairs).
  EdgeList g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 2, 3.0);
  g.add_edge(2, 3, 2.0);
  const auto msf = seq::kruskal_msf(g);
  const core::Dendrogram d(4, msf);
  ASSERT_EQ(d.num_merges(), 3u);
  EXPECT_DOUBLE_EQ(d.merge_height(0), 1.0);
  EXPECT_DOUBLE_EQ(d.merge_height(1), 2.0);
  EXPECT_DOUBLE_EQ(d.merge_height(2), 3.0);

  std::size_t k = 0;
  const auto two = d.cut_at(2.5, &k);
  EXPECT_EQ(k, 2u);
  EXPECT_EQ(two[0], two[1]);
  EXPECT_EQ(two[2], two[3]);
  EXPECT_NE(two[0], two[2]);

  const auto one = d.cut_at(3.0, &k);  // threshold inclusive
  EXPECT_EQ(k, 1u);
  EXPECT_EQ(one[0], one[3]);
}

TEST(Dendrogram, CutIntoExactClusterCounts) {
  const EdgeList g = random_graph(500, 2500, 3);
  const auto msf = seq::kruskal_msf(g);
  const core::Dendrogram d(500, msf);
  for (const std::size_t k : {1u, 2u, 7u, 100u, 500u}) {
    std::size_t got = 0;
    const auto labels = d.cut_into(k, &got);
    const std::size_t floor_k = std::max<std::size_t>(k, msf.num_trees);
    EXPECT_EQ(got, std::min<std::size_t>(floor_k, 500)) << "k=" << k;
    // Labels dense.
    const auto mx = *std::max_element(labels.begin(), labels.end());
    EXPECT_EQ(static_cast<std::size_t>(mx) + 1, got);
  }
}

TEST(Dendrogram, CutMatchesThresholdedForestComponents) {
  // Cutting the dendrogram at T must equal components of the forest
  // restricted to edges of weight <= T.
  const EdgeList g = geometric_knn(800, 5, 7);
  const auto msf = seq::kruskal_msf(g);
  const core::Dendrogram d(800, msf);
  for (const double t : {0.01, 0.03, 0.06, 0.2}) {
    std::size_t k = 0;
    const auto labels = d.cut_at(t, &k);
    seq::UnionFind uf(800);
    for (const auto& e : msf.edges) {
      if (e.w <= t) uf.unite(e.u, e.v);
    }
    EXPECT_EQ(k, uf.num_sets()) << "threshold " << t;
    for (VertexId u = 0; u < 800; u += 13) {
      for (VertexId v = 0; v < 800; v += 17) {
        EXPECT_EQ(labels[u] == labels[v], uf.connected(u, v))
            << u << "," << v << " @ " << t;
      }
    }
  }
}

TEST(Dendrogram, DisconnectedInputNeverMergesAcrossComponents) {
  EdgeList g(6);  // two triangles
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 2);
  g.add_edge(0, 2, 3);
  g.add_edge(3, 4, 1);
  g.add_edge(4, 5, 2);
  g.add_edge(3, 5, 3);
  const auto msf = seq::kruskal_msf(g);
  const core::Dendrogram d(6, msf);
  EXPECT_EQ(d.num_merges(), 4u);
  std::size_t k = 0;
  const auto labels = d.cut_at(1e9, &k);  // keep everything
  EXPECT_EQ(k, 2u);
  EXPECT_NE(labels[0], labels[3]);
  // cut_into(1) cannot go below the component count.
  (void)d.cut_into(1, &k);
  EXPECT_EQ(k, 2u);
}

TEST(Dendrogram, WorksWithParallelAlgorithmOutput) {
  const EdgeList g = random_graph(2000, 9000, 9);
  const auto msf = test::run_alg(g, core::Algorithm::kBorFAL, 4);
  const core::Dendrogram d(2000, msf);
  std::size_t k = 0;
  (void)d.cut_into(5, &k);
  EXPECT_EQ(k, std::max<std::size_t>(5, msf.num_trees));
}

TEST(Dendrogram, EmptyAndSingleton) {
  MsfResult empty;
  const core::Dendrogram d0(0, empty);
  EXPECT_EQ(d0.num_merges(), 0u);
  const core::Dendrogram d1(1, empty);
  std::size_t k = 0;
  const auto labels = d1.cut_at(0.0, &k);
  EXPECT_EQ(k, 1u);
  EXPECT_EQ(labels[0], 0u);
}

}  // namespace
