// Lock-free log-scale histogram: bucket math, quantile error bounds,
// concurrent recording.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "pprim/histogram.hpp"

namespace {

using smp::Histogram;

TEST(Histogram, BucketOfMatchesBucketBounds) {
  // Every value must land in a bucket whose [lo, hi) range contains it —
  // exhaustively for small values, then across the whole 64-bit range at
  // octave boundaries and mid-octave points.
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 0; v < 4096; ++v) values.push_back(v);
  for (int e = 12; e < 64; ++e) {
    const std::uint64_t p = std::uint64_t{1} << e;
    values.push_back(p - 1);
    values.push_back(p);
    values.push_back(p + p / 3);
    values.push_back(p + p / 2);
  }
  values.push_back(~std::uint64_t{0});
  for (const std::uint64_t v : values) {
    const std::size_t b = Histogram::bucket_of(v);
    ASSERT_LT(b, Histogram::kBuckets) << "value " << v;
    const auto [lo, hi] = Histogram::bucket_bounds(b);
    ASSERT_LE(lo, v) << "value " << v << " bucket " << b;
    if (b + 1 < Histogram::kBuckets) {
      ASSERT_LT(v, hi) << "value " << v << " bucket " << b;
    }
  }
}

TEST(Histogram, BucketsAreContiguousAndMonotone) {
  for (std::size_t b = 0; b + 1 < Histogram::kBuckets; ++b) {
    const auto [lo, hi] = Histogram::bucket_bounds(b);
    const auto [next_lo, next_hi] = Histogram::bucket_bounds(b + 1);
    ASSERT_LT(lo, hi);
    ASSERT_EQ(hi, next_lo) << "gap/overlap between buckets " << b << " and "
                           << b + 1;
    ASSERT_LT(next_lo, next_hi);
  }
}

TEST(Histogram, SmallValuesAreExact) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 1.5);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
}

TEST(Histogram, QuantileWithin25Percent) {
  Histogram h;
  std::vector<std::uint64_t> values;
  std::uint64_t v = 1;
  for (int i = 0; i < 200; ++i) {
    values.push_back(v);
    h.record(v);
    v = v * 17 / 16 + 1;  // roughly log-spaced up to ~hundreds of thousands
  }
  const auto s = h.snapshot();
  for (const double q : {0.1, 0.5, 0.9, 0.95, 0.99}) {
    const double est = s.quantile(q);
    const double exact = static_cast<double>(
        values[static_cast<std::size_t>(q * (values.size() - 1))]);
    EXPECT_NEAR(est, exact, exact * 0.25 + 1.0) << "q=" << q;
  }
}

TEST(Histogram, QuantileNeverExceedsMax) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.record(1000);
  const auto s = h.snapshot();
  for (const double q : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_LE(s.quantile(q), 1000.0) << "q=" << q;
  }
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record(7);
  h.reset();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t * kPerThread + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.max, static_cast<std::uint64_t>(kThreads) * kPerThread - 1);
  std::uint64_t total = 0;
  for (const auto b : s.buckets) total += b;
  EXPECT_EQ(total, s.count);
}

}  // namespace
