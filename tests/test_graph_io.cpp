// DIMACS-like text I/O: exact round-trip and malformed-input handling.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace {

using namespace smp::graph;

TEST(GraphIO, RoundTripPreservesEverything) {
  const EdgeList g = random_graph(200, 700, 3);
  std::stringstream ss;
  write_dimacs(ss, g);
  const EdgeList h = read_dimacs(ss);
  EXPECT_EQ(h.num_vertices, g.num_vertices);
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (std::size_t i = 0; i < g.edges.size(); ++i) {
    EXPECT_EQ(h.edges[i].u, g.edges[i].u);
    EXPECT_EQ(h.edges[i].v, g.edges[i].v);
    EXPECT_EQ(h.edges[i].w, g.edges[i].w) << "weights must round-trip exactly";
  }
}

TEST(GraphIO, EmptyAndEdgelessGraphs) {
  std::stringstream ss;
  write_dimacs(ss, EdgeList(5));
  const EdgeList h = read_dimacs(ss);
  EXPECT_EQ(h.num_vertices, 5u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(GraphIO, CommentsAreSkipped) {
  std::istringstream is("c hello\np edge 3 1\nc mid comment\ne 1 3 2.5\n");
  const EdgeList g = read_dimacs(is);
  EXPECT_EQ(g.num_vertices, 3u);
  ASSERT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.edges[0].u, 0u);
  EXPECT_EQ(g.edges[0].v, 2u);
  EXPECT_DOUBLE_EQ(g.edges[0].w, 2.5);
}

TEST(GraphIO, MalformedInputsThrow) {
  {
    std::istringstream is("e 1 2 3.0\n");  // edge before header
    EXPECT_THROW(read_dimacs(is), std::runtime_error);
  }
  {
    std::istringstream is("p edge 3 2\ne 1 2 1.0\n");  // count mismatch
    EXPECT_THROW(read_dimacs(is), std::runtime_error);
  }
  {
    std::istringstream is("p edge 3 1\ne 0 2 1.0\n");  // 0 is invalid (1-based)
    EXPECT_THROW(read_dimacs(is), std::runtime_error);
  }
  {
    std::istringstream is("p edge 3 1\ne 1 4 1.0\n");  // out of range
    EXPECT_THROW(read_dimacs(is), std::runtime_error);
  }
  {
    std::istringstream is("q edge 3 1\n");  // unknown tag
    EXPECT_THROW(read_dimacs(is), std::runtime_error);
  }
  {
    std::istringstream is("");  // missing header
    EXPECT_THROW(read_dimacs(is), std::runtime_error);
  }
}

TEST(GraphIO, ReaderCanonicalizesParallelEdges) {
  // Duplicate {u,v} pairs collapse to the <weight, edge-id>-minimal edge at
  // load time: lightest weight wins, earliest line wins a weight tie.
  std::istringstream is(
      "p edge 4 5\n"
      "e 1 2 3.0\n"
      "e 2 1 1.0\n"   // same pair, lighter: replaces line 1
      "e 1 2 1.0\n"   // weight tie: earlier edge (line 2) is kept
      "e 3 4 2.0\n"
      "e 3 4 2.0\n"   // exact duplicate: first occurrence kept
      );
  const EdgeList g = read_dimacs(is);
  ASSERT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.edges[0].u, 1u);  // stored 0-based, canonical u < v not forced
  EXPECT_EQ(g.edges[0].v, 0u);
  EXPECT_DOUBLE_EQ(g.edges[0].w, 1.0);
  EXPECT_EQ(g.edges[1].u, 2u);
  EXPECT_EQ(g.edges[1].v, 3u);
  EXPECT_DOUBLE_EQ(g.edges[1].w, 2.0);
}

TEST(GraphIO, KeepAllPolicyPreservesParallelEdges) {
  std::istringstream is("p edge 3 3\ne 1 2 3.0\ne 2 1 1.0\ne 1 2 3.0\n");
  const EdgeList g = read_dimacs(is, ParallelEdgePolicy::kKeepAll);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphIO, BinaryReaderCanonicalizesToo) {
  EdgeList g(3);
  g.add_edge(0, 1, 5.0);
  g.add_edge(1, 0, 2.0);
  g.add_edge(1, 2, 1.0);
  const std::string path = ::testing::TempDir() + "/smpmsf_io_canon.smpg";
  write_binary_file(path, g);
  const EdgeList h = read_binary_file(path);
  ASSERT_EQ(h.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(h.edges[0].w, 2.0);
  EXPECT_DOUBLE_EQ(h.edges[1].w, 1.0);
  const EdgeList all = read_binary_file(path, ParallelEdgePolicy::kKeepAll);
  EXPECT_EQ(all.num_edges(), 3u);
}

TEST(GraphIO, FileRoundTrip) {
  const EdgeList g = mesh2d(8, 8, 4);
  const std::string path = ::testing::TempDir() + "/smpmsf_io_test.gr";
  write_dimacs_file(path, g);
  const EdgeList h = read_dimacs_file(path);
  EXPECT_EQ(h.num_vertices, g.num_vertices);
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_THROW(read_dimacs_file(path + ".does-not-exist"), std::runtime_error);
}

}  // namespace
