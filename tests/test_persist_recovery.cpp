// Durable serving end to end: WAL + snapshot recovery through ServiceCore,
// clean-shutdown fast path, the corrupt-log corpus recovery must refuse,
// idempotent retries across restarts, and the failure-repair-snapshot
// interactions the chaos harness drills from outside the process.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "dynamic/edge_store.hpp"
#include "persist/snapshot.hpp"
#include "persist/wal.hpp"
#include "pprim/fault.hpp"
#include "serve/service_core.hpp"

namespace {

using namespace smp;
using namespace smp::graph;
using namespace smp::serve;

struct TempDir {
  std::string path;
  TempDir() {
    static int counter = 0;
    path = (std::filesystem::temp_directory_path() /
            ("smpmsf_recovery_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
};

Request make(Op op, std::string session = {}) {
  Request r;
  r.op = op;
  r.session = std::move(session);
  return r;
}

Request open_req(const std::string& session, VertexId n) {
  Request r = make(Op::kOpen, session);
  r.num_vertices = n;
  return r;
}

Request insert_req(const std::string& session, std::vector<WEdge> edges,
                   std::string idem_id = {}) {
  Request r = make(Op::kInsert, session);
  r.insertions = std::move(edges);
  r.idem_id = std::move(idem_id);
  return r;
}

Request delete_req(const std::string& session,
                   std::vector<std::pair<VertexId, VertexId>> pairs) {
  Request r = make(Op::kDelete, session);
  r.deletions = std::move(pairs);
  return r;
}

ServeOptions durable_opts(const std::string& dir) {
  ServeOptions opts;
  opts.data_dir = dir;
  opts.fsync = persist::FsyncPolicy::kAlways;  // deterministic durability
  opts.clean_shutdown = false;  // leave the WAL tail, like a crash would
  return opts;
}

/// Everything restart bit-identity compares: the forest as (u,v,w) triples
/// plus the summary facts.
struct SessionState {
  double weight = 0;
  std::size_t trees = 0;
  std::size_t live = 0;
  std::vector<std::tuple<VertexId, VertexId, Weight>> forest;

  bool operator==(const SessionState& o) const {
    return weight == o.weight && trees == o.trees && live == o.live &&
           forest == o.forest;
  }
};

SessionState state_of(ServiceCore& svc, const std::string& session) {
  SessionState st;
  const Response w = svc.call(make(Op::kWeight, session));
  EXPECT_EQ(w.status, Status::kOk);
  st.weight = w.weight;
  st.trees = w.trees;
  st.live = w.live_edges;
  const Response e = svc.call(make(Op::kForestEdges, session));
  EXPECT_EQ(e.status, Status::kOk);
  for (const WEdge& edge : e.edges) st.forest.emplace_back(edge.u, edge.v, edge.w);
  return st;
}

std::string joined_notes(const ServiceCore& svc) {
  std::string out;
  for (const std::string& n : svc.recovery_notes()) out += n + "\n";
  return out;
}

/// Path of the session's first WAL segment (base LSN 1 — present until the
/// first snapshot rotates the log).
std::string first_segment(const std::string& data_dir,
                          const std::string& session) {
  return data_dir + "/" + session + "/wal-0000000000000001.log";
}

void append_bytes(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::app);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

void flip_byte(const std::string& path, std::size_t offset) {
  std::fstream fs(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(fs.good());
  fs.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  fs.read(&c, 1);
  c = static_cast<char>(c ^ 0x10);
  fs.seekp(static_cast<std::streamoff>(offset));
  fs.write(&c, 1);
  ASSERT_TRUE(fs.good());
}

TEST(PersistRecovery, UncleanRestartReplaysTheWal) {
  TempDir dir;
  SessionState before;
  {
    ServiceCore svc(durable_opts(dir.path));
    ASSERT_EQ(svc.call(open_req("g", 8)).status, Status::kOk);
    Response r = svc.call(insert_req("g", {{0, 1, 1.5}, {1, 2, 2.0}}));
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.lsn, 1u);  // acked writes carry their commit LSN
    ASSERT_EQ(svc.call(insert_req("g", {{2, 3, 0.25}, {0, 3, 9.0}})).status,
              Status::kOk);
    ASSERT_EQ(svc.call(delete_req("g", {{1, 2}})).status, Status::kOk);
    before = state_of(svc, "g");
  }  // no clean-shutdown epilogue: the restart must replay

  ServiceCore svc(durable_opts(dir.path));
  EXPECT_NE(joined_notes(svc).find("replayed 3 WAL records"),
            std::string::npos)
      << joined_notes(svc);
  EXPECT_EQ(svc.metrics().replayed_records.load(), 3u);
  EXPECT_EQ(state_of(svc, "g"), before);

  // The forest is a pure function of the live store: a from-scratch solve
  // over the recovered store must reproduce it bit-identically.
  ASSERT_EQ(svc.call(make(Op::kRecompute, "g")).status, Status::kOk);
  EXPECT_EQ(state_of(svc, "g"), before);
}

TEST(PersistRecovery, CleanShutdownSkipsReplay) {
  TempDir dir;
  SessionState before;
  {
    ServeOptions opts = durable_opts(dir.path);
    opts.clean_shutdown = true;
    ServiceCore svc(opts);
    ASSERT_EQ(svc.call(open_req("g", 5)).status, Status::kOk);
    ASSERT_EQ(svc.call(insert_req("g", {{0, 1, 1.0}, {3, 4, 2.0}})).status,
              Status::kOk);
    before = state_of(svc, "g");
    svc.shutdown();  // writes the final snapshot + CLEAN marker
  }
  ServiceCore svc(durable_opts(dir.path));
  EXPECT_NE(joined_notes(svc).find("clean shutdown"), std::string::npos)
      << joined_notes(svc);
  EXPECT_EQ(svc.metrics().replayed_records.load(), 0u);
  EXPECT_EQ(state_of(svc, "g"), before);
}

TEST(PersistRecovery, SnapshotsTruncateTheWalAndRetainGenerations) {
  TempDir dir;
  ServeOptions opts = durable_opts(dir.path);
  opts.snapshot_every_records = 2;
  opts.snapshot_retain = 2;
  SessionState before;
  {
    ServiceCore svc(opts);
    ASSERT_EQ(svc.call(open_req("g", 32)).status, Status::kOk);
    for (VertexId v = 1; v < 20; ++v) {
      ASSERT_EQ(
          svc.call(insert_req("g", {{v - 1, v, 1.0 / (v + 1)}})).status,
          Status::kOk);
    }
    before = state_of(svc, "g");
  }
  // Retention held: at most 2 snapshot generations plus the initial-open
  // generation never accumulate, and WAL segments before the oldest
  // retained snapshot are trimmed.
  const std::string sdir = dir.path + "/g";
  std::size_t snaps = 0;
  std::size_t segments = 0;
  for (const auto& entry : std::filesystem::directory_iterator(sdir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0) ++snaps;
    if (name.rfind("wal-", 0) == 0) ++segments;
  }
  EXPECT_LE(snaps, 2u);
  EXPECT_LE(segments, 2u);

  ServiceCore svc(opts);
  EXPECT_EQ(state_of(svc, "g"), before);
  EXPECT_LE(svc.metrics().replayed_records.load(), 2u);
}

TEST(PersistRecovery, CompactionReplaysThroughItsWalRecord) {
  TempDir dir;
  ServeOptions opts = durable_opts(dir.path);
  opts.compact_min_slots = 16;  // auto-compaction at toy scale
  SessionState before;
  {
    ServiceCore svc(opts);
    ASSERT_EQ(svc.call(open_req("g", 40)).status, Status::kOk);
    Request grow = insert_req("g", {});
    for (VertexId v = 1; v < 33; ++v) {
      grow.insertions.push_back(WEdge{v - 1, v, static_cast<Weight>(v)});
    }
    ASSERT_EQ(svc.call(grow).status, Status::kOk);
    // Tombstone most of the store: live/slots falls under the 0.5 default,
    // so the flush auto-compacts and must log the renumbering point.
    Request del = delete_req("g", {});
    for (VertexId v = 1; v < 25; ++v) del.deletions.emplace_back(v - 1, v);
    ASSERT_EQ(svc.call(del).status, Status::kOk);
    EXPECT_GE(svc.metrics().compactions.load(), 1u);
    // Deletes against post-compaction store ids only replay correctly if
    // the compact record landed in sequence.
    ASSERT_EQ(svc.call(delete_req("g", {{30, 31}})).status, Status::kOk);
    ASSERT_EQ(svc.call(make(Op::kCompact, "g")).status, Status::kOk);
    ASSERT_EQ(svc.call(insert_req("g", {{0, 39, 0.125}})).status, Status::kOk);
    before = state_of(svc, "g");
  }
  ServiceCore svc(opts);
  EXPECT_EQ(state_of(svc, "g"), before);
  ASSERT_EQ(svc.call(make(Op::kRecompute, "g")).status, Status::kOk);
  EXPECT_EQ(state_of(svc, "g"), before);
}

TEST(PersistRecovery, IdempotentRetryDedupsAcrossRestart) {
  TempDir dir;
  std::uint64_t original_lsn = 0;
  SessionState before;
  {
    ServiceCore svc(durable_opts(dir.path));
    ASSERT_EQ(svc.call(open_req("g", 4)).status, Status::kOk);
    const Response r =
        svc.call(insert_req("g", {{0, 1, 1.0}}, "client-7-req-42"));
    ASSERT_EQ(r.status, Status::kOk);
    EXPECT_FALSE(r.dedup);
    EXPECT_EQ(r.idem_id, "client-7-req-42");
    original_lsn = r.lsn;
    ASSERT_NE(original_lsn, 0u);
    before = state_of(svc, "g");
  }
  // The ack was "lost": the client reconnects after the crash and resends.
  ServiceCore svc(durable_opts(dir.path));
  const Response retry =
      svc.call(insert_req("g", {{0, 1, 1.0}}, "client-7-req-42"));
  ASSERT_EQ(retry.status, Status::kOk);
  EXPECT_TRUE(retry.dedup);
  EXPECT_EQ(retry.lsn, original_lsn);
  EXPECT_GE(svc.metrics().dedup_hits.load(), 1u);
  // Applied exactly once: no second parallel edge appeared.
  EXPECT_EQ(state_of(svc, "g"), before);
}

TEST(PersistRecovery, DedupWorksWithoutPersistenceToo) {
  ServiceCore svc;  // no data dir
  ASSERT_EQ(svc.call(open_req("g", 4)).status, Status::kOk);
  ASSERT_EQ(svc.call(insert_req("g", {{0, 1, 1.0}}, "only-once")).status,
            Status::kOk);
  const Response retry = svc.call(insert_req("g", {{0, 1, 1.0}}, "only-once"));
  ASSERT_EQ(retry.status, Status::kOk);
  EXPECT_TRUE(retry.dedup);
  EXPECT_EQ(retry.lsn, 0u);  // no WAL, so no LSN to echo
  EXPECT_EQ(svc.call(make(Op::kWeight, "g")).live_edges, 1u);
}

TEST(PersistRecovery, HealthReportsQueueSessionsAndLsn) {
  TempDir dir;
  ServiceCore svc(durable_opts(dir.path));
  Response h = svc.call(make(Op::kHealth));
  EXPECT_EQ(h.status, Status::kOk);
  EXPECT_EQ(h.health_sessions, 0u);
  EXPECT_GE(h.uptime_s, 0.0);

  ASSERT_EQ(svc.call(open_req("g", 4)).status, Status::kOk);
  ASSERT_EQ(svc.call(insert_req("g", {{0, 1, 1.0}})).status, Status::kOk);
  ASSERT_EQ(svc.call(insert_req("g", {{1, 2, 1.0}})).status, Status::kOk);
  h = svc.call(make(Op::kHealth, "g"));
  EXPECT_EQ(h.status, Status::kOk);
  EXPECT_EQ(h.health_sessions, 1u);
  EXPECT_EQ(h.lsn, 2u);  // last committed LSN of the named session

  EXPECT_EQ(svc.call(make(Op::kHealth, "nope")).status, Status::kNotFound);
}

TEST(PersistRecovery, TornTailIsTruncatedAndReplayStops) {
  TempDir dir;
  SessionState before;
  {
    ServiceCore svc(durable_opts(dir.path));
    ASSERT_EQ(svc.call(open_req("g", 4)).status, Status::kOk);
    ASSERT_EQ(svc.call(insert_req("g", {{0, 1, 1.0}})).status, Status::kOk);
    before = state_of(svc, "g");
  }
  // A crash mid-append: the next record's frame is cut off half way.
  persist::WalRecord torn;
  torn.lsn = 2;
  torn.insertions = {{1, 2, 5.0}};
  const std::string bytes = persist::encode_record(torn);
  append_bytes(first_segment(dir.path, "g"), bytes.substr(0, bytes.size() / 2));

  ServiceCore svc(durable_opts(dir.path));
  EXPECT_NE(joined_notes(svc).find("torn tail truncated"), std::string::npos)
      << joined_notes(svc);
  // The un-acked torn record is gone; the acked prefix survives.
  EXPECT_EQ(state_of(svc, "g"), before);
  // And the truncation was durable: appends resume from a clean boundary.
  ASSERT_EQ(svc.call(insert_req("g", {{2, 3, 1.0}})).status, Status::kOk);
}

TEST(PersistRecovery, CorruptRecordRefusesRecoveryWithDiagnostics) {
  TempDir dir;
  {
    ServiceCore svc(durable_opts(dir.path));
    ASSERT_EQ(svc.call(open_req("g", 4)).status, Status::kOk);
    ASSERT_EQ(svc.call(insert_req("g", {{0, 1, 1.0}})).status, Status::kOk);
    ASSERT_EQ(svc.call(insert_req("g", {{1, 2, 2.0}})).status, Status::kOk);
  }
  // Flip one payload bit of the FIRST record: a complete frame whose CRC
  // fails is corruption in the middle of the log, never a torn tail.
  flip_byte(first_segment(dir.path, "g"), 12);
  try {
    ServiceCore svc(durable_opts(dir.path));
    FAIL() << "recovery must refuse a corrupt mid-log record";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
    const std::string what = e.what();
    EXPECT_NE(what.find("recovering session 'g'"), std::string::npos) << what;
    EXPECT_NE(what.find("offset"), std::string::npos) << what;
  }
}

TEST(PersistRecovery, DuplicateLsnRefusesRecovery) {
  TempDir dir;
  {
    ServiceCore svc(durable_opts(dir.path));
    ASSERT_EQ(svc.call(open_req("g", 4)).status, Status::kOk);
    ASSERT_EQ(svc.call(insert_req("g", {{0, 1, 1.0}})).status, Status::kOk);
  }
  persist::WalRecord dup;
  dup.lsn = 1;  // repeats the committed LSN
  dup.insertions = {{1, 2, 2.0}};
  append_bytes(first_segment(dir.path, "g"), persist::encode_record(dup));
  try {
    ServiceCore svc(durable_opts(dir.path));
    FAIL() << "duplicate LSN must refuse recovery";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos)
        << e.what();
  }
}

TEST(PersistRecovery, ZeroLengthWalSegmentIsAValidEmptyTail) {
  TempDir dir;
  SessionState before;
  {
    ServiceCore svc(durable_opts(dir.path));
    ASSERT_EQ(svc.call(open_req("g", 4)).status, Status::kOk);
    before = state_of(svc, "g");
  }
  // The open wrote the initial snapshot and an empty active segment — the
  // "crashed right after open" shape.  Truncate to zero explicitly too.
  std::ofstream(first_segment(dir.path, "g"),
                std::ios::binary | std::ios::trunc)
      .close();
  ServiceCore svc(durable_opts(dir.path));
  EXPECT_EQ(state_of(svc, "g"), before);
}

TEST(PersistRecovery, WalWithoutSnapshotRefusesRecovery) {
  TempDir dir;
  const std::string sdir = dir.path + "/g";
  std::filesystem::create_directories(sdir);
  persist::WalRecord rec;
  rec.lsn = 1;
  rec.insertions = {{0, 1, 1.0}};
  append_bytes(sdir + "/wal-0000000000000001.log",
               persist::encode_record(rec));
  EXPECT_THROW(ServiceCore svc(durable_opts(dir.path)), Error);
}

TEST(PersistRecovery, HalfOpenedHuskAndDroppingDirAreSweptAway) {
  TempDir dir;
  // A session directory with neither snapshot nor WAL: open crashed before
  // the initial snapshot, so the open was never acked — remove it.
  std::filesystem::create_directories(dir.path + "/husk");
  // A drop that died between rename and remove_all.
  std::filesystem::create_directories(dir.path + "/old.dropping");
  ServiceCore svc(durable_opts(dir.path));
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/husk"));
  EXPECT_FALSE(std::filesystem::exists(dir.path + "/old.dropping"));
  EXPECT_EQ(svc.call(make(Op::kList)).sessions.size(), 0u);
  // The names are reusable afterwards.
  EXPECT_EQ(svc.call(open_req("husk", 3)).status, Status::kOk);
}

TEST(PersistRecovery, DropRemovesDurableStateAndSurvivesRestart) {
  TempDir dir;
  {
    ServiceCore svc(durable_opts(dir.path));
    ASSERT_EQ(svc.call(open_req("g", 4)).status, Status::kOk);
    ASSERT_EQ(svc.call(insert_req("g", {{0, 1, 1.0}})).status, Status::kOk);
    ASSERT_EQ(svc.call(make(Op::kDrop, "g")).status, Status::kOk);
    EXPECT_FALSE(std::filesystem::exists(dir.path + "/g"));
  }
  ServiceCore svc(durable_opts(dir.path));
  EXPECT_EQ(svc.call(make(Op::kWeight, "g")).status, Status::kNotFound);
  // Re-opening the dropped name starts fresh.
  ASSERT_EQ(svc.call(open_req("g", 9)).status, Status::kOk);
  EXPECT_EQ(svc.call(make(Op::kWeight, "g")).trees, 9u);
}

TEST(PersistRecovery, MidSolveFailureIsLoggedRepairedAndRecovers) {
  TempDir dir;
  ServeOptions opts = durable_opts(dir.path);
  opts.msf.algorithm = core::Algorithm::kBorEL;
  opts.msf.threads = 2;
  // Without this the armed bad_alloc is swallowed by the graceful
  // degradation path (solve falls back to sequential Kruskal and succeeds);
  // disabling the fallback surfaces it as a mid-solve kOutOfMemory.
  opts.msf.allow_sequential_fallback = false;
  SessionState before;
  {
    ServiceCore svc(opts);
    ASSERT_EQ(svc.call(open_req("g", 64)).status, Status::kOk);
    Request grow = insert_req("g", {});
    for (VertexId v = 1; v < 64; ++v) {
      grow.insertions.push_back(WEdge{v - 1, v, 1.0 / (v + 1)});
    }
    ASSERT_EQ(svc.call(grow).status, Status::kOk);

    // The next apply fails *inside* the solve: the store mutation is in, so
    // the group must be WAL-logged like a success, then the forest repaired.
    FaultInjector::arm("bor-el.connect.region", FaultKind::kBadAlloc);
    const Response r = svc.call(insert_req("g", {{0, 63, 0.001}}));
    FaultInjector::disarm_all();
    EXPECT_NE(r.status, Status::kOk);
    EXPECT_TRUE(r.applied);
    EXPECT_EQ(r.lsn, 2u);  // the failed-mid-solve group still committed
    EXPECT_GE(svc.metrics().solver_repairs.load(), 1u);

    // The repaired forest includes the new edge.
    before = state_of(svc, "g");
    EXPECT_EQ(before.live, 64u);
  }
  ServiceCore svc(opts);
  EXPECT_EQ(svc.metrics().replayed_records.load(), 2u);
  EXPECT_EQ(state_of(svc, "g"), before);
}

TEST(PersistRecovery, DeadlineExpiryThenSnapshotStaysConsistent) {
  TempDir dir;
  ServeOptions opts = durable_opts(dir.path);
  opts.msf.threads = 2;
  opts.snapshot_every_records = 1;  // snapshot right behind every commit
  SessionState before;
  {
    ServiceCore svc(opts);
    ASSERT_EQ(svc.call(open_req("g", 2000)).status, Status::kOk);
    Request grow = insert_req("g", {});
    for (VertexId v = 1; v < 2000; ++v) {
      grow.insertions.push_back(WEdge{v - 1, v, 1.0 / v});
    }
    ASSERT_EQ(svc.call(grow).status, Status::kOk);

    // A tight-deadline write: it may commit in time, expire before the
    // apply (dropped atomically), or trip mid-solve (applied + repaired +
    // snapshotted).  Whichever way it falls, the snapshot taken immediately
    // after the repair-recompute must reproduce exactly the served state.
    Request risky = insert_req("g", {{0, 1999, 0.5}});
    risky.deadline_s = 0.002;
    const Response r = svc.call(risky);
    if (r.status != Status::kOk) {
      EXPECT_TRUE(r.status == Status::kDeadlineExceeded ||
                  r.status == Status::kInternal)
          << to_string(r.status);
    }
    ASSERT_EQ(svc.call(make(Op::kRecompute, "g")).status, Status::kOk);
    before = state_of(svc, "g");
  }
  ServiceCore svc(opts);
  EXPECT_EQ(state_of(svc, "g"), before);
}

TEST(PersistRecovery, EdgeStoreCompactTombstoneHeavyAtThreshold) {
  // Satellite: the EdgeStore invariants auto-compaction leans on, at
  // exactly the live/slots ratio the serving layer triggers at.
  dynamic::EdgeStore store(64);
  std::vector<EdgeId> ids;
  for (VertexId v = 1; v < 64; ++v) {
    ids.push_back(store.insert(v - 1, v, static_cast<Weight>(v)));
  }
  // Tombstone to one past the 0.5 default threshold: 31 live of 63 slots.
  for (std::size_t i = 0; i < 32; ++i) store.erase(ids[2 * i]);
  ASSERT_EQ(store.num_live(), 31u);
  ASSERT_LT(static_cast<double>(store.num_live()),
            0.5 * static_cast<double>(store.size()));

  const std::vector<EdgeId> remap = store.compact();
  ASSERT_EQ(remap.size(), 63u);
  EXPECT_EQ(store.size(), 31u);
  EXPECT_EQ(store.num_live(), 31u);
  // Survivors keep their (u,v,w) and land at ascending new ids; tombstones
  // map to the sentinel.
  EdgeId expected_next = 0;
  for (std::size_t old = 0; old < 63; ++old) {
    if (old % 2 == 0 && old / 2 < 32) {
      EXPECT_EQ(remap[old], static_cast<EdgeId>(-1)) << old;
      continue;
    }
    ASSERT_EQ(remap[old], expected_next) << old;
    const WEdge& e = store.edge(remap[old]);
    EXPECT_EQ(e.u, static_cast<VertexId>(old));
    EXPECT_EQ(e.v, static_cast<VertexId>(old + 1));
    EXPECT_DOUBLE_EQ(e.w, static_cast<Weight>(old + 1));
    ++expected_next;
  }
  // And the compacted store round-trips through the snapshot serializer.
  std::string bytes;
  store.serialize(bytes);
  const dynamic::EdgeStore back = dynamic::EdgeStore::restore(
      reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size());
  EXPECT_EQ(back.size(), store.size());
  EXPECT_EQ(back.num_live(), store.num_live());
}

}  // namespace
