// Arena allocator: alignment, chunk growth, reuse after reset, per-thread
// isolation under concurrency.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>

#include "pprim/arena.hpp"
#include "pprim/parallel_for.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

TEST(Arena, AllocationsAreDisjointAndAligned) {
  Arena arena(4096);
  std::set<std::uintptr_t> starts;
  for (int i = 0; i < 100; ++i) {
    auto s = arena.alloc_array<std::uint64_t>(17);
    ASSERT_EQ(s.size(), 17u);
    const auto addr = reinterpret_cast<std::uintptr_t>(s.data());
    EXPECT_EQ(addr % alignof(std::uint64_t), 0u);
    EXPECT_TRUE(starts.insert(addr).second) << "duplicate allocation address";
    std::memset(s.data(), i, s.size_bytes());  // must be writable
  }
  EXPECT_GE(arena.bytes_in_use(), 100 * 17 * sizeof(std::uint64_t));
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena arena(1024);
  auto big = arena.alloc_array<std::byte>(1 << 20);
  ASSERT_EQ(big.size(), std::size_t{1} << 20);
  std::memset(big.data(), 0xAB, big.size());
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 20);
}

TEST(Arena, ResetRecyclesWithoutReleasing) {
  Arena arena(4096);
  for (int i = 0; i < 50; ++i) (void)arena.alloc_array<int>(100);
  const std::size_t reserved = arena.bytes_reserved();
  arena.reset();
  EXPECT_EQ(arena.bytes_in_use(), 0u);
  // Steady-state: same demand should not grow the reservation.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 50; ++i) (void)arena.alloc_array<int>(100);
    arena.reset();
  }
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(Arena, ZeroCountReturnsEmpty) {
  Arena arena;
  EXPECT_TRUE(arena.alloc_array<int>(0).empty());
}

TEST(Arena, MixedAlignments) {
  Arena arena(4096);
  for (int i = 0; i < 200; ++i) {
    auto c = arena.alloc_array<char>(3);
    auto d = arena.alloc_array<double>(5);
    auto s = arena.alloc_array<std::uint16_t>(9);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % alignof(double), 0u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(s.data()) % alignof(std::uint16_t), 0u);
    c[0] = 'x';
    d[0] = 1.5;
    s[0] = 7;
  }
}

TEST(ThreadArenas, ConcurrentPerThreadAllocationIsIsolated) {
  constexpr int kP = 6;
  ThreadTeam team(kP);
  ThreadArenas arenas(kP, 1 << 16);
  std::vector<std::vector<std::uint32_t*>> ptrs(kP);
  team.run([&](TeamCtx& ctx) {
    auto& arena = arenas.local(ctx.tid());
    for (int i = 0; i < 1000; ++i) {
      auto s = arena.alloc_array<std::uint32_t>(16);
      s[0] = static_cast<std::uint32_t>(ctx.tid() * 100000 + i);
      ptrs[ctx.tid()].push_back(s.data());
    }
  });
  // Values written by each thread survive intact (no overlap between arenas).
  for (int t = 0; t < kP; ++t) {
    for (std::size_t i = 0; i < ptrs[t].size(); ++i) {
      ASSERT_EQ(*ptrs[t][i], static_cast<std::uint32_t>(t * 100000 + static_cast<int>(i)));
    }
  }
  arenas.reset_all();
  for (int t = 0; t < kP; ++t) EXPECT_EQ(arenas.local(t).bytes_in_use(), 0u);
}

}  // namespace
