// Bridges / articulation points, including brute-force cross-checks and the
// bridges-are-in-every-MSF invariant.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/bridges.hpp"
#include "graph/generators.hpp"
#include "graph/stats.hpp"
#include "seq/seq_msf.hpp"
#include "seq/union_find.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

std::size_t components_without_edge(const EdgeList& g, EdgeId skip) {
  seq::UnionFind uf(g.num_vertices);
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    if (i == skip) continue;
    uf.unite(g.edges[i].u, g.edges[i].v);
  }
  return uf.num_sets();
}

std::size_t components_without_vertex(const EdgeList& g, VertexId skip) {
  seq::UnionFind uf(g.num_vertices);
  for (const auto& e : g.edges) {
    if (e.u == skip || e.v == skip) continue;
    uf.unite(e.u, e.v);
  }
  // The removed vertex still counts as a singleton set; subtract it.
  return uf.num_sets() - 1;
}

void brute_force_check(const EdgeList& g) {
  const auto cs = find_cut_structure(g);
  const std::size_t base = num_components(g);
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    const bool is_bridge = components_without_edge(g, i) > base;
    const bool reported =
        std::binary_search(cs.bridges.begin(), cs.bridges.end(), i);
    EXPECT_EQ(reported, is_bridge) << "edge " << i;
  }
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    const bool is_ap = components_without_vertex(g, v) > base;
    const bool reported = std::binary_search(cs.articulation_points.begin(),
                                             cs.articulation_points.end(), v);
    EXPECT_EQ(reported, is_ap) << "vertex " << v;
  }
}

TEST(Bridges, HandExamples) {
  // Two triangles joined by one bridge 2-3; 2 and 3 are articulation points.
  EdgeList g(6);
  g.add_edge(0, 1, 1);
  g.add_edge(1, 2, 1);
  g.add_edge(0, 2, 1);
  g.add_edge(2, 3, 1);  // id 3: the bridge
  g.add_edge(3, 4, 1);
  g.add_edge(4, 5, 1);
  g.add_edge(3, 5, 1);
  const auto cs = find_cut_structure(g);
  EXPECT_EQ(cs.bridges, std::vector<EdgeId>{3});
  EXPECT_EQ(cs.articulation_points, (std::vector<VertexId>{2, 3}));
}

TEST(Bridges, TreeIsAllBridges) {
  const EdgeList g = structured_graph(0, 128, 1);
  const auto cs = find_cut_structure(g);
  EXPECT_EQ(cs.bridges.size(), g.num_edges());
  // Every internal vertex of a tree with degree >= 2 is an articulation pt.
  const auto ds = degree_stats(g);
  (void)ds;
  EXPECT_FALSE(cs.articulation_points.empty());
}

TEST(Bridges, CycleHasNone) {
  EdgeList g(10);
  for (VertexId v = 0; v < 10; ++v) g.add_edge(v, (v + 1) % 10, 1.0);
  const auto cs = find_cut_structure(g);
  EXPECT_TRUE(cs.bridges.empty());
  EXPECT_TRUE(cs.articulation_points.empty());
}

TEST(Bridges, ParallelEdgesAreNeverBridges) {
  EdgeList g(3);
  g.add_edge(0, 1, 1.0);
  g.add_edge(0, 1, 2.0);  // parallel pair: neither is a bridge
  g.add_edge(1, 2, 3.0);  // genuine bridge
  const auto cs = find_cut_structure(g);
  EXPECT_EQ(cs.bridges, std::vector<EdgeId>{2});
}

TEST(Bridges, BruteForceAgreementOnRandomGraphs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    brute_force_check(random_graph(60, 90, seed));   // sparse: many bridges
    brute_force_check(random_graph(60, 300, seed));  // denser: few
  }
  brute_force_check(mesh2d_p(7, 7, 0.5, 9));
  brute_force_check(EdgeList(5));  // no edges
}

TEST(Bridges, EveryBridgeIsInEveryMsf) {
  // A bridge lies in every spanning forest, in particular the MSF — for
  // every algorithm.
  const EdgeList g = random_graph(3000, 4000, 7);  // sparse: plenty of bridges
  const auto cs = find_cut_structure(g);
  ASSERT_FALSE(cs.bridges.empty());
  for (const auto alg : core::kParallelAlgorithms) {
    const auto ids = test::sorted_ids(test::run_alg(g, alg, 4));
    for (const EdgeId b : cs.bridges) {
      ASSERT_TRUE(std::binary_search(ids.begin(), ids.end(), b))
          << core::to_string(alg) << " is missing bridge " << b;
    }
  }
}

TEST(Bridges, IsolatedVerticesAndEmptyGraph) {
  const auto cs = find_cut_structure(EdgeList(0));
  EXPECT_TRUE(cs.bridges.empty());
  EXPECT_TRUE(cs.articulation_points.empty());
}

}  // namespace
