// CsrGraph and FlexAdjList representation invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "graph/csr.hpp"
#include "graph/flex_adj_list.hpp"
#include "graph/generators.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

TEST(CsrGraph, DegreesAndArcsMatchEdgeList) {
  const EdgeList g = random_graph(300, 1200, 5);
  const CsrGraph c(g);
  ASSERT_EQ(c.num_vertices(), g.num_vertices);
  ASSERT_EQ(c.num_arcs(), 2 * g.num_edges());

  std::vector<std::size_t> deg(g.num_vertices, 0);
  for (const auto& e : g.edges) {
    ++deg[e.u];
    ++deg[e.v];
  }
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    EXPECT_EQ(c.degree(v), deg[v]) << v;
  }
}

TEST(CsrGraph, EveryArcReflectsItsOriginalEdge) {
  const EdgeList g = random_graph(200, 800, 6);
  const CsrGraph c(g);
  std::vector<int> arc_count(g.num_edges(), 0);
  for (VertexId v = 0; v < g.num_vertices; ++v) {
    const auto nbrs = c.neighbors(v);
    const auto ws = c.weights(v);
    const auto os = c.origs(v);
    for (std::size_t a = 0; a < nbrs.size(); ++a) {
      const auto& e = g.edges[os[a]];
      EXPECT_EQ(e.w, ws[a]);
      EXPECT_TRUE((e.u == v && e.v == nbrs[a]) || (e.v == v && e.u == nbrs[a]));
      ++arc_count[os[a]];
    }
  }
  for (const int cnt : arc_count) EXPECT_EQ(cnt, 2);  // one arc per direction
}

TEST(CsrGraph, EmptyGraph) {
  const CsrGraph c{EdgeList(0)};
  EXPECT_EQ(c.num_vertices(), 0u);
  EXPECT_EQ(c.num_arcs(), 0u);
  const CsrGraph c5{EdgeList(5)};
  EXPECT_EQ(c5.num_vertices(), 5u);
  EXPECT_EQ(c5.degree(3), 0u);
}

TEST(FlexAdjList, InitialStateOneMemberPerSupervertex) {
  const EdgeList g = random_graph(100, 300, 7);
  const CsrGraph c(g);
  FlexAdjList fal(c);
  EXPECT_EQ(fal.num_super(), 100u);
  for (VertexId v = 0; v < 100; ++v) {
    EXPECT_EQ(fal.super_of(v), v);
    EXPECT_EQ(fal.member_count(v), 1u);
    fal.for_each_member(v, [&](VertexId m) { EXPECT_EQ(m, v); });
  }
}

TEST(FlexAdjList, ContractMergesMemberListsWithPointerOps) {
  const EdgeList g = random_graph(12, 20, 8);
  const CsrGraph c(g);
  FlexAdjList fal(c);
  ThreadTeam team(2);

  // Merge {0..3}→0, {4..7}→1, {8..11}→2.
  std::vector<VertexId> labels(12);
  for (VertexId v = 0; v < 12; ++v) labels[v] = v / 4;
  fal.contract(team, labels, 3);

  EXPECT_EQ(fal.num_super(), 3u);
  for (VertexId s = 0; s < 3; ++s) {
    EXPECT_EQ(fal.member_count(s), 4u);
    std::vector<VertexId> members;
    fal.for_each_member(s, [&](VertexId m) { members.push_back(m); });
    std::sort(members.begin(), members.end());
    for (int i = 0; i < 4; ++i) EXPECT_EQ(members[i], s * 4 + i);
  }
  for (VertexId v = 0; v < 12; ++v) EXPECT_EQ(fal.super_of(v), v / 4);
}

TEST(FlexAdjList, RepeatedContractionsComposeLabels) {
  const EdgeList g = random_graph(16, 40, 9);
  const CsrGraph c(g);
  FlexAdjList fal(c);
  ThreadTeam team(3);

  std::vector<VertexId> l1(16);
  for (VertexId v = 0; v < 16; ++v) l1[v] = v / 2;  // 16 → 8
  fal.contract(team, l1, 8);
  std::vector<VertexId> l2(8);
  for (VertexId v = 0; v < 8; ++v) l2[v] = v / 4;  // 8 → 2
  fal.contract(team, l2, 2);

  EXPECT_EQ(fal.num_super(), 2u);
  EXPECT_EQ(fal.member_count(0), 8u);
  EXPECT_EQ(fal.member_count(1), 8u);
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(fal.super_of(v), v / 8);
}

TEST(FlexAdjList, ContractToSingleSupervertex) {
  const EdgeList g = random_graph(50, 100, 10);
  const CsrGraph c(g);
  FlexAdjList fal(c);
  ThreadTeam team(4);
  std::vector<VertexId> labels(50, 0);
  fal.contract(team, labels, 1);
  EXPECT_EQ(fal.num_super(), 1u);
  EXPECT_EQ(fal.member_count(0), 50u);
  // Total adjacency reachable through the member lists covers all arcs.
  std::size_t arcs = 0;
  fal.for_each_member(0, [&](VertexId m) { arcs += c.degree(m); });
  EXPECT_EQ(arcs, c.num_arcs());
}

}  // namespace
