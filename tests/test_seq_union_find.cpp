// UnionFind and IndexedHeap unit tests.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pprim/rng.hpp"
#include "seq/indexed_heap.hpp"
#include "seq/union_find.hpp"

namespace {

using namespace smp;
using seq::IndexedHeap;
using seq::UnionFind;

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.num_sets(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    for (std::uint32_t j = i + 1; j < 5; ++j) EXPECT_FALSE(uf.connected(i, j));
  }
}

TEST(UnionFind, UniteTracksSetsAndIdempotence) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0)) << "already merged";
  EXPECT_EQ(uf.num_sets(), 4u);
  EXPECT_TRUE(uf.unite(0, 2));
  EXPECT_TRUE(uf.connected(1, 3));
  EXPECT_EQ(uf.num_sets(), 3u);
}

TEST(UnionFind, ChainMergesCompress) {
  const std::uint32_t n = 10000;
  UnionFind uf(n);
  for (std::uint32_t i = 1; i < n; ++i) EXPECT_TRUE(uf.unite(i - 1, i));
  EXPECT_EQ(uf.num_sets(), 1u);
  const std::uint32_t root = uf.find(0);
  for (std::uint32_t i = 0; i < n; i += 97) EXPECT_EQ(uf.find(i), root);
}

TEST(UnionFind, RandomOperationsMatchNaiveLabels) {
  const std::uint32_t n = 300;
  UnionFind uf(n);
  std::vector<std::uint32_t> label(n);
  for (std::uint32_t i = 0; i < n; ++i) label[i] = i;
  Rng rng(99);
  for (int op = 0; op < 2000; ++op) {
    const auto a = static_cast<std::uint32_t>(rng.next_below(n));
    const auto b = static_cast<std::uint32_t>(rng.next_below(n));
    const bool naive_merged = label[a] != label[b];
    EXPECT_EQ(uf.unite(a, b), naive_merged);
    if (naive_merged) {
      const auto from = label[b], to = label[a];
      for (auto& l : label) {
        if (l == from) l = to;
      }
    }
    if (op % 100 == 0) {
      for (std::uint32_t i = 0; i < n; i += 31) {
        for (std::uint32_t j = 0; j < n; j += 37) {
          EXPECT_EQ(uf.connected(i, j), label[i] == label[j]);
        }
      }
    }
  }
}

TEST(IndexedHeap, PopsInSortedOrder) {
  IndexedHeap<int> h(100);
  Rng rng(7);
  std::vector<int> keys;
  for (std::uint32_t i = 0; i < 100; ++i) {
    const int k = static_cast<int>(rng.next_below(1000000));
    h.push(i, k);
    keys.push_back(k);
  }
  std::sort(keys.begin(), keys.end());
  for (const int expect : keys) {
    ASSERT_FALSE(h.empty());
    EXPECT_EQ(h.pop().key, expect);
  }
  EXPECT_TRUE(h.empty());
}

TEST(IndexedHeap, DecreaseKeyMovesElementUp) {
  IndexedHeap<int> h(10);
  for (std::uint32_t i = 0; i < 10; ++i) h.push(i, 100 + static_cast<int>(i));
  EXPECT_TRUE(h.decrease(7, 1));
  EXPECT_FALSE(h.decrease(7, 50)) << "not smaller than current key";
  const auto top = h.pop();
  EXPECT_EQ(top.id, 7u);
  EXPECT_EQ(top.key, 1);
}

TEST(IndexedHeap, ContainsAndKeyOfTrackMembership) {
  IndexedHeap<int> h(5);
  EXPECT_FALSE(h.contains(3));
  h.push(3, 42);
  EXPECT_TRUE(h.contains(3));
  EXPECT_EQ(h.key_of(3), 42);
  (void)h.pop();
  EXPECT_FALSE(h.contains(3));
}

TEST(IndexedHeap, PushOrDecrease) {
  IndexedHeap<int> h(4);
  h.push_or_decrease(0, 10);
  h.push_or_decrease(0, 5);
  h.push_or_decrease(0, 8);  // no-op
  EXPECT_EQ(h.key_of(0), 5);
}

TEST(IndexedHeap, ClearRetainsCapacity) {
  IndexedHeap<int> h(8);
  for (std::uint32_t i = 0; i < 8; ++i) h.push(i, static_cast<int>(i));
  h.clear();
  EXPECT_TRUE(h.empty());
  for (std::uint32_t i = 0; i < 8; ++i) EXPECT_FALSE(h.contains(i));
  h.push(2, -1);
  EXPECT_EQ(h.pop().id, 2u);
}

TEST(IndexedHeap, RandomizedAgainstMultiset) {
  IndexedHeap<std::uint64_t> h(500);
  std::vector<std::uint64_t> key(500);
  std::vector<bool> present(500, false);
  Rng rng(31);
  for (int op = 0; op < 20000; ++op) {
    const auto id = static_cast<std::uint32_t>(rng.next_below(500));
    const auto action = rng.next_below(3);
    if (action == 0 && !present[id]) {
      key[id] = rng.next();
      h.push(id, key[id]);
      present[id] = true;
    } else if (action == 1 && present[id]) {
      const std::uint64_t nk = rng.next();
      if (nk < key[id]) {
        EXPECT_TRUE(h.decrease(id, nk));
        key[id] = nk;
      } else {
        EXPECT_FALSE(h.decrease(id, nk));
      }
    } else if (action == 2 && !h.empty()) {
      const auto top = h.pop();
      // Must be the minimum among present keys.
      std::uint64_t mn = UINT64_MAX;
      for (std::uint32_t i = 0; i < 500; ++i) {
        if (present[i]) mn = std::min(mn, key[i]);
      }
      EXPECT_EQ(top.key, mn);
      present[top.id] = false;
    }
  }
}

}  // namespace
