// pointer_jump_components + densify_labels unit tests.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/hook_jump.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;
using graph::VertexId;

TEST(PointerJump, AllSelfLoopsStayRoots) {
  ThreadTeam team(2);
  std::vector<VertexId> parent(10);
  std::iota(parent.begin(), parent.end(), 0u);
  core::pointer_jump_components(team, parent);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(parent[v], v);
  EXPECT_EQ(core::densify_labels(team, parent), 10u);
}

TEST(PointerJump, SingleChainCollapsesToRoot) {
  ThreadTeam team(4);
  const std::size_t n = 1000;
  std::vector<VertexId> parent(n);
  parent[0] = 0;
  for (std::size_t v = 1; v < n; ++v) parent[v] = static_cast<VertexId>(v - 1);
  core::pointer_jump_components(team, parent);
  for (std::size_t v = 0; v < n; ++v) EXPECT_EQ(parent[v], 0u);
}

TEST(PointerJump, MutualTwoCycleBreaksTowardSmallerId) {
  ThreadTeam team(1);
  // 3 ↔ 7 mutual minimum; 1 and 5 hang off them.
  std::vector<VertexId> parent = {0, 3, 2, 7, 4, 7, 6, 3};
  core::pointer_jump_components(team, parent);
  EXPECT_EQ(parent[3], 3u) << "smaller endpoint becomes the root";
  EXPECT_EQ(parent[7], 3u);
  EXPECT_EQ(parent[1], 3u);
  EXPECT_EQ(parent[5], 3u);
  EXPECT_EQ(parent[0], 0u);
  EXPECT_EQ(parent[2], 2u);
}

TEST(PointerJump, ManyTwoCyclesAcrossThreadCounts) {
  for (const int threads : {1, 2, 4, 8}) {
    ThreadTeam team(threads);
    const std::size_t n = 10000;
    std::vector<VertexId> parent(n);
    // Pair 2i ↔ 2i+1 mutually.
    for (std::size_t i = 0; i < n; i += 2) {
      parent[i] = static_cast<VertexId>(i + 1);
      parent[i + 1] = static_cast<VertexId>(i);
    }
    core::pointer_jump_components(team, parent);
    for (std::size_t i = 0; i < n; i += 2) {
      EXPECT_EQ(parent[i], i);
      EXPECT_EQ(parent[i + 1], i);
    }
    const VertexId roots = core::densify_labels(team, parent);
    EXPECT_EQ(roots, n / 2);
    for (std::size_t i = 0; i < n; i += 2) {
      EXPECT_EQ(parent[i], i / 2) << "dense ids in root order";
      EXPECT_EQ(parent[i + 1], i / 2);
    }
  }
}

TEST(DensifyLabels, ProducesContiguousIds) {
  ThreadTeam team(3);
  // Roots at 0, 4, 9 with various attachments (already jumped).
  std::vector<VertexId> parent = {0, 0, 4, 4, 4, 9, 9, 0, 9, 9};
  const VertexId roots = core::densify_labels(team, parent);
  EXPECT_EQ(roots, 3u);
  EXPECT_EQ(parent[0], 0u);
  EXPECT_EQ(parent[1], 0u);
  EXPECT_EQ(parent[7], 0u);
  EXPECT_EQ(parent[2], 1u);
  EXPECT_EQ(parent[4], 1u);
  EXPECT_EQ(parent[5], 2u);
  EXPECT_EQ(parent[9], 2u);
}

TEST(PointerJump, EmptyInput) {
  ThreadTeam team(2);
  std::vector<VertexId> parent;
  core::pointer_jump_components(team, parent);
  EXPECT_EQ(core::densify_labels(team, parent), 0u);
}

}  // namespace
