// The shared find-min layer: packed ⟨weight-rank, arc⟩ keys, Bor-FAL
// live-arc pruning, the contention-aware local-best reduction, and the
// runtime-dispatched SIMD min-scan kernel (pprim/simd.hpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/find_min.hpp"
#include "core/msf.hpp"
#include "graph/csr.hpp"
#include "graph/flex_adj_list.hpp"
#include "graph/generators.hpp"
#include "pprim/fault.hpp"
#include "pprim/simd.hpp"
#include "pprim/thread_team.hpp"
#include "test_util.hpp"

namespace {

using namespace smp;
using namespace smp::graph;

MsfResult solve(const EdgeList& g, core::Algorithm alg, int threads,
                core::FindMinMode mode, core::MsfOptions extra = {}) {
  core::MsfOptions opts = extra;
  opts.algorithm = alg;
  opts.threads = threads;
  opts.bc_base_size = 32;
  opts.find_min = mode;
  return core::minimum_spanning_forest(g, opts);
}

EdgeList all_equal_weights(EdgeList g, Weight w) {
  for (auto& e : g.edges) e.w = w;
  return g;
}

EdgeList signed_zero_weights(EdgeList g) {
  // Alternate +0.0 / -0.0: equal as weights, different bit patterns — the
  // forest is then decided purely by the input-index tie-break, which the
  // packed path must reproduce (monotone_weight_bits normalizes -0.0).
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    g.edges[i].w = (i % 2 == 0) ? 0.0 : -0.0;
  }
  return g;
}

// ---------------------------------------------------------------------------
// Bit-identical forests: packed/SIMD path vs the seed scan kernel, across
// all five parallel algorithms, thread counts, and graph families.

TEST(FindMin, BitIdenticalForestsAcrossModesAndThreads) {
  const EdgeList graphs[] = {
      structured_graph(0, 512, 7),
      rmat_graph(10, 5000, 42),
      random_graph(2000, 8000, 4),
      all_equal_weights(random_graph(1000, 4000, 9), 2.5),
      signed_zero_weights(random_graph(600, 2400, 11)),
  };
  for (std::size_t gi = 0; gi < std::size(graphs); ++gi) {
    const EdgeList& g = graphs[gi];
    for (const auto alg : core::kParallelAlgorithms) {
      const auto baseline =
          test::sorted_ids(solve(g, alg, 1, core::FindMinMode::kScan));
      for (const int p : {1, 2, 4, 8}) {
        for (const auto mode :
             {core::FindMinMode::kScan, core::FindMinMode::kSimd,
              core::FindMinMode::kAuto}) {
          const auto ids = test::sorted_ids(solve(g, alg, p, mode));
          EXPECT_EQ(ids, baseline)
              << core::to_string(alg) << " graph " << gi << " p=" << p
              << " mode=" << core::to_string(mode);
        }
      }
    }
  }
}

TEST(FindMin, TuningKnobsDoNotChangeTheForest) {
  const EdgeList g = random_graph(3000, 12000, 21);
  const auto baseline =
      test::sorted_ids(solve(g, core::Algorithm::kBorFAL, 1,
                             core::FindMinMode::kScan));
  for (const auto alg : {core::Algorithm::kBorFAL, core::Algorithm::kBorEL}) {
    core::MsfOptions force_local_best;
    force_local_best.find_min_local_best_threads = 1;
    force_local_best.find_min_local_best_cutoff =
        std::numeric_limits<std::size_t>::max();
    core::MsfOptions no_local_best;
    no_local_best.find_min_local_best_threads = 9999;
    core::MsfOptions tiny_blocks;
    tiny_blocks.find_min_prune_block = 1;
    core::MsfOptions huge_blocks;
    huge_blocks.find_min_prune_block = 4096;
    for (const auto& extra :
         {force_local_best, no_local_best, tiny_blocks, huge_blocks}) {
      const auto ids = test::sorted_ids(
          solve(g, alg, 4, core::FindMinMode::kSimd, extra));
      EXPECT_EQ(ids, baseline) << core::to_string(alg);
    }
  }
}

// ---------------------------------------------------------------------------
// Pruning invariants

TEST(FindMin, LiveArcCountsMonotoneNonIncreasingAndPruningCounted) {
  const EdgeList g = random_graph(4000, 16000, 33);
  std::vector<core::IterationStat> stats;
  core::StepTimes st;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorFAL;
  opts.threads = 4;
  opts.iteration_stats = &stats;
  opts.step_times = &st;
  const MsfResult r = core::minimum_spanning_forest(g, opts);
  ASSERT_GE(stats.size(), 2u);
  EXPECT_EQ(stats[0].directed_edges, 2 * g.num_edges());
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_LE(stats[i].directed_edges, stats[i - 1].directed_edges)
        << "iteration " << i;
  }
  // A random multigraph sheds most arcs in the first contractions.
  EXPECT_GT(st.pruned_arcs, 0u);
  // The final no-progress probe iteration retires every remaining arc (all
  // are intra-component by then), so across the whole solve pruning must
  // account for exactly all 2m arcs; the live count at the start of the
  // final iteration is what that probe still had to scan.
  EXPECT_EQ(st.pruned_arcs, 2 * g.num_edges());
  EXPECT_GE(stats.back().directed_edges,
            2 * g.num_edges() - st.pruned_arcs);
  // Liveness at selection time: a pruned MSF edge could never be selected,
  // so the forest matching the seed kernel (and Kruskal) proves every MSF
  // edge was still live when find-min picked it.
  core::MsfOptions seq;
  seq.algorithm = core::Algorithm::kSeqKruskal;
  EXPECT_EQ(test::sorted_ids(r),
            test::sorted_ids(core::minimum_spanning_forest(g, seq)));
}

TEST(FindMin, ScanModeReportsNoPruning) {
  const EdgeList g = random_graph(2000, 8000, 5);
  core::StepTimes st;
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorFAL;
  opts.threads = 2;
  opts.find_min = core::FindMinMode::kScan;
  opts.step_times = &st;
  (void)core::minimum_spanning_forest(g, opts);
  EXPECT_EQ(st.pruned_arcs, 0u);
}

TEST(FindMin, ContractionNeverTouchesTheLiveArcSet) {
  // The live-arc working set is keyed by ORIGINAL vertex; contract() merges
  // supervertices without looking at it.
  const EdgeList g = random_graph(256, 1024, 17);
  const CsrGraph csr(g);
  FlexAdjList fal(csr);
  ASSERT_EQ(fal.live_arcs(), csr.num_arcs());
  const auto ends_before = std::vector<EdgeId>(fal.live_ends().begin(),
                                               fal.live_ends().end());
  // Merge pairs: new_label[s] = s / 2.
  std::vector<VertexId> new_label(fal.num_super());
  for (VertexId s = 0; s < fal.num_super(); ++s) new_label[s] = s / 2;
  ThreadTeam team(2);
  fal.contract(team, new_label, fal.num_super() / 2);
  EXPECT_EQ(std::vector<EdgeId>(fal.live_ends().begin(),
                                fal.live_ends().end()),
            ends_before);
  EXPECT_EQ(fal.live_arcs(), csr.num_arcs());
}

TEST(FindMin, PruneFaultLeavesTeamReusable) {
  const EdgeList g = random_graph(1000, 4000, 3);
  const auto expected = test::sorted_ids(
      solve(g, core::Algorithm::kBorFAL, 1, core::FindMinMode::kScan));
  ThreadTeam team(4);
  core::MsfOptions opts;
  opts.algorithm = core::Algorithm::kBorFAL;
  FaultInjector::arm("bor-fal.find-min.prune", FaultKind::kRuntimeError);
  EXPECT_THROW((void)core::minimum_spanning_forest(team, g, opts),
               std::runtime_error);
  EXPECT_EQ(FaultInjector::hits("bor-fal.find-min.prune"), 1u);
  FaultInjector::disarm_all();
  // The poisoned barrier released every sibling; the same team must solve
  // correctly afterwards.
  const MsfResult r = core::minimum_spanning_forest(team, g, opts);
  EXPECT_EQ(test::sorted_ids(r), expected);
}

// ---------------------------------------------------------------------------
// Packed-key building blocks

TEST(FindMin, MonotoneWeightBitsPreservesOrder) {
  const double samples[] = {-1e300, -2.5, -1.0, -1e-300, -0.0, 0.0,
                            1e-300, 0.5,  1.0,  2.5,     1e300};
  for (std::size_t i = 0; i < std::size(samples); ++i) {
    for (std::size_t j = 0; j < std::size(samples); ++j) {
      const auto bi = core::monotone_weight_bits(samples[i]);
      const auto bj = core::monotone_weight_bits(samples[j]);
      if (samples[i] < samples[j]) {
        EXPECT_LT(bi, bj) << samples[i] << " vs " << samples[j];
      } else if (samples[i] > samples[j]) {
        EXPECT_GT(bi, bj) << samples[i] << " vs " << samples[j];
      } else {
        // Covers -0.0 == +0.0: identical bits, so the stable rank sort
        // falls back to the input-index tie-break.
        EXPECT_EQ(bi, bj) << samples[i] << " vs " << samples[j];
      }
    }
  }
}

TEST(FindMin, PackKeyRoundTrips) {
  const std::uint32_t ranks[] = {0u, 1u, 0x7fffffffu, 0xffffffffu};
  const std::uint64_t arcs[] = {0u, 1u, 0xfffffffeu, 0xffffffffu};
  for (const auto r : ranks) {
    for (const auto a : arcs) {
      const std::uint64_t k = core::pack_key(r, a);
      EXPECT_EQ(core::key_rank(k), r);
      EXPECT_EQ(core::key_index(k), a);
    }
  }
  EXPECT_TRUE(core::find_min_packable(std::size_t{1} << 31));
  EXPECT_FALSE(core::find_min_packable((std::size_t{1} << 31) + 1));
}

TEST(FindMin, WeightRanksAgreeWithWeightOrder) {
  // Heavy weight duplication so the rank sort's stability (the input-index
  // tie-break) actually decides most of the order.
  EdgeList g = random_graph(500, 3000, 8);
  std::mt19937_64 rng(99);
  for (auto& e : g.edges) e.w = static_cast<Weight>(rng() % 7);
  ThreadTeam team(4);
  const auto rank = core::build_weight_ranks(team, g);
  ASSERT_EQ(rank.size(), g.edges.size());
  std::vector<bool> seen(rank.size(), false);
  for (const auto r : rank) {
    ASSERT_LT(r, rank.size());
    EXPECT_FALSE(seen[r]) << "ranks must be a permutation";
    seen[r] = true;
  }
  for (EdgeId i = 0; i < g.edges.size(); ++i) {
    for (EdgeId j = i + 1; j < std::min<EdgeId>(g.edges.size(), i + 40); ++j) {
      const WeightOrder oi{g.edges[i].w, i};
      const WeightOrder oj{g.edges[j].w, j};
      EXPECT_EQ(oi < oj, rank[i] < rank[j]) << i << " vs " << j;
    }
  }
}

// ---------------------------------------------------------------------------
// SIMD kernel: all paths return the identical lowest-index argmin.

std::size_t reference_argmin(const std::vector<std::uint64_t>& v) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < v.size(); ++i) {
    if (v[i] < v[best]) best = i;
  }
  return best;
}

void check_all_paths(const std::vector<std::uint64_t>& v) {
  const std::size_t want = reference_argmin(v);
  EXPECT_EQ(u64_argmin_scalar(v.data(), v.size()), want);
  EXPECT_EQ(u64_argmin(v.data(), v.size()), want);
#if defined(__x86_64__) || defined(_M_X64)
  if (active_simd_isa() == SimdIsa::kAvx2) {
    EXPECT_EQ(u64_argmin_avx2(v.data(), v.size()), want);
  }
#endif
#if defined(__aarch64__)
  EXPECT_EQ(u64_argmin_neon(v.data(), v.size()), want);
#endif
}

TEST(SimdKernel, ExhaustiveSmallArrays) {
  // Every array of length ≤ 5 over a 3-value alphabet (ties everywhere).
  const std::uint64_t alphabet[] = {1u, 2u, ~std::uint64_t{0}};
  for (std::size_t n = 1; n <= 5; ++n) {
    std::vector<std::size_t> digits(n, 0);
    for (;;) {
      std::vector<std::uint64_t> v(n);
      for (std::size_t i = 0; i < n; ++i) v[i] = alphabet[digits[i]];
      check_all_paths(v);
      std::size_t d = 0;
      while (d < n && ++digits[d] == std::size(alphabet)) digits[d++] = 0;
      if (d == n) break;
    }
  }
}

TEST(SimdKernel, BoundaryLengthsAndTailMinima) {
  // Lengths straddling the vector width and the internal scalar cutoff;
  // plant the unique minimum at every position including the tail.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{7}, std::size_t{8}, std::size_t{15}, std::size_t{16},
        std::size_t{17}, std::size_t{31}, std::size_t{32}, std::size_t{33},
        std::size_t{63}, std::size_t{64}, std::size_t{65}}) {
    for (std::size_t pos = 0; pos < n; ++pos) {
      std::vector<std::uint64_t> v(n, 500u);
      v[pos] = 7u;
      const std::size_t got = u64_argmin(v.data(), n);
      EXPECT_EQ(got, pos) << "n=" << n;
      check_all_paths(v);
    }
  }
}

TEST(SimdKernel, AllEqualKeysTieToLowestIndex) {
  for (const std::size_t n : {std::size_t{1}, std::size_t{16}, std::size_t{37},
                              std::size_t{128}}) {
    const std::vector<std::uint64_t> same(n, 42u);
    EXPECT_EQ(u64_argmin(same.data(), n), 0u);
    const std::vector<std::uint64_t> empty_keys(n, core::kEmptyKey);
    EXPECT_EQ(u64_argmin(empty_keys.data(), n), 0u);
    check_all_paths(same);
    check_all_paths(empty_keys);
  }
}

TEST(SimdKernel, SignBitBoundaryAndRandomFuzz) {
  // Keys straddling 2^63 catch a broken unsigned-compare emulation (AVX2
  // only has signed 64-bit compares).  NaN-free by construction: keys are
  // integer ranks, never raw double bits — so no NaN ordering caveats apply.
  std::mt19937_64 rng(1234);
  const std::uint64_t interesting[] = {
      0u, 1u, 0x7fffffffffffffffu, 0x8000000000000000u, ~std::uint64_t{0}};
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 1 + rng() % 97;
    std::vector<std::uint64_t> v(n);
    for (auto& x : v) {
      x = (rng() % 3 == 0) ? interesting[rng() % std::size(interesting)]
                           : rng();
    }
    check_all_paths(v);
  }
}

TEST(SimdKernel, IsaNameMatchesActiveIsa) {
  const char* name = simd_isa_name();
  switch (active_simd_isa()) {
    case SimdIsa::kAvx2:
      EXPECT_STREQ(name, "avx2");
      break;
    case SimdIsa::kNeon:
      EXPECT_STREQ(name, "neon");
      break;
    case SimdIsa::kScalar:
      EXPECT_STREQ(name, "scalar");
      break;
  }
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) {
    EXPECT_EQ(active_simd_isa(), SimdIsa::kAvx2);
  }
#endif
}

}  // namespace
