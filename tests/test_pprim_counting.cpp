// Parallel counting sort and parallel reduce.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "pprim/counting_sort.hpp"
#include "pprim/reduce.hpp"
#include "pprim/rng.hpp"
#include "pprim/thread_team.hpp"

namespace {

using namespace smp;

struct Item {
  std::uint32_t key;
  std::uint32_t payload;
  friend bool operator==(const Item&, const Item&) = default;
};

class CountingSortTest : public ::testing::TestWithParam<int> {};

TEST_P(CountingSortTest, StableAndCorrect) {
  ThreadTeam team(GetParam());
  for (const std::size_t n : {0u, 100u, (1u << 14) - 3, 100000u}) {
    const std::size_t num_keys = 97;
    Rng rng(n + 1);
    std::vector<Item> in(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      in[i] = {static_cast<std::uint32_t>(rng.next_below(num_keys)), i};
    }
    std::vector<Item> out(n);
    std::vector<std::uint64_t> offsets;
    counting_sort_by_key(team, std::span<const Item>(in), std::span<Item>(out),
                         num_keys, [](const Item& x) { return x.key; }, offsets);

    // Reference: stable_sort by key.
    std::vector<Item> expect = in;
    std::stable_sort(expect.begin(), expect.end(),
                     [](const Item& a, const Item& b) { return a.key < b.key; });
    ASSERT_EQ(out, expect) << "n=" << n << " p=" << GetParam();

    // Offsets form a valid CSR: out[offsets[k]..offsets[k+1]) all have key k.
    ASSERT_EQ(offsets.size(), num_keys + 1);
    EXPECT_EQ(offsets.front() , 0u);
    EXPECT_EQ(offsets.back(), n);
    for (std::size_t k = 0; k < num_keys; ++k) {
      ASSERT_LE(offsets[k], offsets[k + 1]);
      for (std::uint64_t i = offsets[k]; i < offsets[k + 1]; ++i) {
        ASSERT_EQ(out[i].key, k);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, CountingSortTest, ::testing::Values(1, 2, 4, 8));

TEST(CountingSort, SingleKeyDegenerate) {
  ThreadTeam team(4);
  std::vector<Item> in(50000);
  for (std::uint32_t i = 0; i < in.size(); ++i) in[i] = {0, i};
  std::vector<Item> out(in.size());
  std::vector<std::uint64_t> offsets;
  counting_sort_by_key(team, std::span<const Item>(in), std::span<Item>(out), 1,
                       [](const Item& x) { return x.key; }, offsets);
  EXPECT_EQ(out, in) << "stability preserves input order within one key";
  EXPECT_EQ(offsets, (std::vector<std::uint64_t>{0, in.size()}));
}

TEST(ParallelReduce, SumAndMaxMatchSerial) {
  for (const int threads : {1, 3, 8}) {
    ThreadTeam team(threads);
    const std::size_t n = 100000;
    std::vector<std::uint64_t> data(n);
    Rng rng(5);
    for (auto& x : data) x = rng.next_below(1000000);

    const auto sum = parallel_sum<std::uint64_t>(team, n, [&](std::size_t i) {
      return data[i];
    });
    EXPECT_EQ(sum, std::accumulate(data.begin(), data.end(), std::uint64_t{0}));

    const auto mx = parallel_reduce<std::uint64_t>(
        team, n, 0, [&](std::size_t i) { return data[i]; },
        [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
    EXPECT_EQ(mx, *std::max_element(data.begin(), data.end()));
  }
}

TEST(ParallelReduce, EmptyRangeGivesIdentity) {
  ThreadTeam team(4);
  EXPECT_EQ(parallel_sum<int>(team, 0, [](std::size_t) { return 1; }), 0);
}

}  // namespace
